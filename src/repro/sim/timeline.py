"""Per-operation execution timelines (debugging / visualization aid).

A :class:`TimelineRecorder` passed to the engine captures each
invocation's per-op start and completion times; :func:`render_timeline`
draws a text gantt of one invocation — handy for seeing a MAY chain
serialize under NACHOS-SW or an LSQ stall a ready load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.graph import DFGraph


@dataclass
class OpTiming:
    op_id: int
    opcode: str
    name: str
    start: int
    complete: int

    @property
    def duration(self) -> int:
        return self.complete - self.start


@dataclass
class InvocationTimeline:
    index: int
    start: int
    end: int
    timings: List[OpTiming] = field(default_factory=list)
    _by_op: Dict[int, OpTiming] = field(default_factory=dict, repr=False)

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def add(self, timing: OpTiming) -> None:
        self.timings.append(timing)
        self._by_op[timing.op_id] = timing

    def timing_of(self, op_id: int) -> OpTiming:
        return self._by_op[op_id]

    def completion_of(self, op_id: int) -> int:
        return self._by_op[op_id].complete

    def start_of(self, op_id: int) -> int:
        return self._by_op[op_id].start


class TimelineRecorder:
    """Collects invocation timelines from a :class:`DataflowEngine`."""

    def __init__(self) -> None:
        self.invocations: List[InvocationTimeline] = []

    def capture(self, graph: DFGraph, index: int, start: int, end: int, runs) -> None:
        timeline = InvocationTimeline(index=index, start=start, end=end)
        for op in graph.ops:
            state = runs.get(op.op_id)
            if state is None or not state.completed:
                continue
            t_start = state.start_time
            if t_start < 0:
                t_start = state.complete_time
            timeline.add(
                OpTiming(
                    op_id=op.op_id,
                    opcode=op.opcode.value,
                    name=op.name,
                    start=t_start,
                    complete=state.complete_time,
                )
            )
        self.invocations.append(timeline)

    def __len__(self) -> int:
        return len(self.invocations)


def render_timeline(
    timeline: InvocationTimeline,
    width: int = 60,
    memory_only: bool = False,
) -> str:
    """A text gantt: one row per op, '=' spans execution, '#' marks
    the completion cycle."""
    span = max(1, timeline.cycles)
    lines = [
        f"invocation {timeline.index}: cycles {timeline.start}..{timeline.end} "
        f"({timeline.cycles} cycles)"
    ]
    for t in sorted(timeline.timings, key=lambda x: (x.start, x.complete, x.op_id)):
        if memory_only and t.opcode not in ("load", "store"):
            continue
        lo = int((t.start - timeline.start) / span * (width - 1))
        hi = int((t.complete - timeline.start) / span * (width - 1))
        bar = "." * lo + "=" * (hi - lo) + "#"
        label = t.name or f"op{t.op_id}"
        lines.append(
            f"{label[:18]:>18} {t.opcode:>6} |{bar:<{width}}| "
            f"@{t.start}..{t.complete}"
        )
    return "\n".join(lines)
