"""Cycle-level dataflow execution engine and the three memory backends.

The engine (:class:`~repro.sim.engine.DataflowEngine`) fires one region
invocation at a time over the placed dataflow graph, with compute
latencies, operand-network hop delays, and a functional value semantics
strong enough to *check correctness*: every backend must produce the same
load values and final memory image as strict program-order execution
(:mod:`repro.sim.oracle`).

Memory operations are delegated to a pluggable disambiguation backend:

* :class:`~repro.sim.backends.lsq.OptLSQBackend` — the paper's OPT-LSQ
  baseline (partitioned CAM + bloom filter, in-order issue),
* :class:`~repro.sim.backends.nachos_sw.NachosSWBackend` — compiler-only
  enforcement of MDEs (MAY serialized),
* :class:`~repro.sim.backends.nachos_hw.NachosBackend` — runtime ``==?``
  comparator checks for MAY edges.
"""

from repro.sim.config import EngineConfig
from repro.sim.engine import DataflowEngine
from repro.sim.factory import (
    ENGINE_MODES,
    EngineModeFallback,
    make_engine,
    resolve_engine_mode,
)
from repro.sim.fast import FastEngine
from repro.sim.vector import VectorEngine
from repro.sim.result import SimResult
from repro.sim.oracle import golden_execute, GoldenResult
from repro.sim.backends.lsq import LSQConfig, OptLSQBackend
from repro.sim.backends.nachos_sw import NachosSWBackend
from repro.sim.backends.nachos_hw import NachosBackend
from repro.sim.backends.serial import SerialMemBackend
from repro.sim.backends.spec_lsq import SpecLSQBackend, SpecLSQConfig
from repro.sim.timeline import (
    InvocationTimeline,
    OpTiming,
    TimelineRecorder,
    render_timeline,
)

__all__ = [
    "InvocationTimeline",
    "OpTiming",
    "TimelineRecorder",
    "render_timeline",
    "DataflowEngine",
    "ENGINE_MODES",
    "EngineConfig",
    "EngineModeFallback",
    "FastEngine",
    "make_engine",
    "resolve_engine_mode",
    "GoldenResult",
    "LSQConfig",
    "NachosBackend",
    "NachosSWBackend",
    "OptLSQBackend",
    "SerialMemBackend",
    "SimResult",
    "SpecLSQBackend",
    "SpecLSQConfig",
    "VectorEngine",
    "golden_execute",
]
