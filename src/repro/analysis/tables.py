"""Plain-text table / bar rendering for experiment reports.

The paper's figures are bar charts over the 27 benchmarks; in a terminal
we render them as fixed-width tables with an optional unicode bar column
so "who wins, by roughly what factor" is visible at a glance.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(row: Sequence) -> List[str]:
    out = []
    for cell in row:
        if isinstance(cell, float):
            out.append(f"{cell:.1f}")
        else:
            out.append(str(cell))
    return out


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows = [_stringify(r) for r in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[k]) for k, cell in enumerate(row))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a GitHub-flavored markdown table."""
    str_rows = [_stringify(r) for r in rows]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def bar(value: float, scale: float, width: int = 24) -> str:
    """A unicode bar proportional to ``value/scale`` (clipped)."""
    if scale <= 0:
        return ""
    filled = int(round(min(1.0, max(0.0, value / scale)) * width))
    return "#" * filled


def pct(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"
