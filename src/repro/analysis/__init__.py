"""Reporting utilities shared by the experiment modules."""

from repro.analysis.compare import Drift, compare_results
from repro.analysis.stats import geomean, mean, percentile, weighted_mean
from repro.analysis.svgplot import BarChart
from repro.analysis.tables import ascii_table, bar, markdown_table, pct

__all__ = [
    "BarChart",
    "Drift",
    "ascii_table",
    "bar",
    "compare_results",
    "geomean",
    "markdown_table",
    "mean",
    "pct",
    "percentile",
    "weighted_mean",
]
