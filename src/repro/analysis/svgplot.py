"""Minimal dependency-free SVG bar charts for the paper's figures.

The evaluation figures are (possibly stacked, possibly signed) bar
charts over the 27 benchmarks.  This module renders exactly that — no
matplotlib required, just an SVG string you can open in a browser.

Supported shapes:

* grouped bars (one or more series side by side per category),
* stacked bars (energy breakdowns),
* negative values (slowdown/speedup plots centered on zero).
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: A muted categorical palette (hex) used in series order.
PALETTE = ("#4878a8", "#e1812c", "#3a923a", "#c03d3e", "#9372b2", "#857aab")


@dataclass
class Series:
    name: str
    values: List[float]


@dataclass
class BarChart:
    """A bar chart over labeled categories."""

    title: str
    categories: List[str]
    series: List[Series] = field(default_factory=list)
    y_label: str = ""
    stacked: bool = False
    width: int = 960
    height: int = 420

    def add_series(self, name: str, values: Sequence[float]) -> "Series":
        values = list(values)
        if len(values) != len(self.categories):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(self.categories)} categories"
            )
        s = Series(name=name, values=values)
        self.series.append(s)
        return s

    # ------------------------------------------------------------------
    def _value_range(self) -> Tuple[float, float]:
        lo, hi = 0.0, 0.0
        if self.stacked:
            for k in range(len(self.categories)):
                pos = sum(s.values[k] for s in self.series if s.values[k] > 0)
                neg = sum(s.values[k] for s in self.series if s.values[k] < 0)
                hi = max(hi, pos)
                lo = min(lo, neg)
        else:
            for s in self.series:
                for v in s.values:
                    hi = max(hi, v)
                    lo = min(lo, v)
        if hi == lo == 0.0:
            hi = 1.0
        pad = 0.08 * (hi - lo)
        return lo - (pad if lo < 0 else 0), hi + pad

    def to_svg(self) -> str:
        if not self.series:
            raise ValueError("chart has no series")
        margin_l, margin_r, margin_t, margin_b = 64, 16, 48, 110
        plot_w = self.width - margin_l - margin_r
        plot_h = self.height - margin_t - margin_b
        lo, hi = self._value_range()
        span = hi - lo

        def y_of(value: float) -> float:
            return margin_t + plot_h * (1 - (value - lo) / span)

        n = len(self.categories)
        slot = plot_w / max(1, n)
        group = slot * 0.8
        per_bar = group / (1 if self.stacked else len(self.series))

        parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif" font-size="11">',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{html.escape(self.title)}</text>',
        ]
        if self.y_label:
            parts.append(
                f'<text x="14" y="{margin_t + plot_h / 2}" text-anchor="middle" '
                f'transform="rotate(-90 14 {margin_t + plot_h / 2})">'
                f"{html.escape(self.y_label)}</text>"
            )

        # Axes and gridlines.
        zero_y = y_of(0.0)
        parts.append(
            f'<line x1="{margin_l}" y1="{zero_y:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{zero_y:.1f}" stroke="#333" stroke-width="1"/>'
        )
        for frac in (0.25, 0.5, 0.75, 1.0):
            value = lo + frac * span
            gy = y_of(value)
            parts.append(
                f'<line x1="{margin_l}" y1="{gy:.1f}" x2="{margin_l + plot_w}" '
                f'y2="{gy:.1f}" stroke="#ddd" stroke-width="0.5"/>'
                f'<text x="{margin_l - 6}" y="{gy + 4:.1f}" text-anchor="end">'
                f"{value:.0f}</text>"
            )

        # Bars.
        for k, category in enumerate(self.categories):
            x0 = margin_l + k * slot + (slot - group) / 2
            if self.stacked:
                pos_base = neg_base = 0.0
                for si, s in enumerate(self.series):
                    v = s.values[k]
                    if v == 0:
                        continue
                    base = pos_base if v > 0 else neg_base
                    top = base + v
                    y1, y2 = sorted((y_of(base), y_of(top)))
                    parts.append(
                        f'<rect x="{x0:.1f}" y="{y1:.1f}" width="{group:.1f}" '
                        f'height="{max(0.5, y2 - y1):.1f}" '
                        f'fill="{PALETTE[si % len(PALETTE)]}"/>'
                    )
                    if v > 0:
                        pos_base = top
                    else:
                        neg_base = top
            else:
                for si, s in enumerate(self.series):
                    v = s.values[k]
                    y1, y2 = sorted((y_of(0.0), y_of(v)))
                    parts.append(
                        f'<rect x="{x0 + si * per_bar:.1f}" y="{y1:.1f}" '
                        f'width="{max(0.5, per_bar - 1):.1f}" '
                        f'height="{max(0.5, y2 - y1):.1f}" '
                        f'fill="{PALETTE[si % len(PALETTE)]}"/>'
                    )
            # Rotated category label.
            lx = x0 + group / 2
            ly = margin_t + plot_h + 10
            parts.append(
                f'<text x="{lx:.1f}" y="{ly:.1f}" text-anchor="end" '
                f'transform="rotate(-55 {lx:.1f} {ly:.1f})">'
                f"{html.escape(category)}</text>"
            )

        # Legend.
        lx = margin_l
        for si, s in enumerate(self.series):
            parts.append(
                f'<rect x="{lx}" y="30" width="10" height="10" '
                f'fill="{PALETTE[si % len(PALETTE)]}"/>'
                f'<text x="{lx + 14}" y="39">{html.escape(s.name)}</text>'
            )
            lx += 14 + 7 * len(s.name) + 24

        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_svg())
