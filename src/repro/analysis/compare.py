"""Diff two exported experiment results (regression tooling).

``compare_results(old, new)`` walks the JSON payloads produced by
:mod:`repro.experiments.export` and reports numeric drifts beyond a
relative tolerance plus any structural changes — a lightweight way to
gate accidental behaviour changes in CI or between library versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List


@dataclass(frozen=True)
class Drift:
    path: str
    old: Any
    new: Any

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.path}: {self.old!r} -> {self.new!r}"


def _walk(path: str, old: Any, new: Any, rel_tol: float, out: List[Drift]) -> None:
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            if key not in old:
                out.append(Drift(f"{path}.{key}", "<absent>", new[key]))
            elif key not in new:
                out.append(Drift(f"{path}.{key}", old[key], "<absent>"))
            else:
                _walk(f"{path}.{key}", old[key], new[key], rel_tol, out)
        return
    if isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            out.append(Drift(f"{path}.len", len(old), len(new)))
        for k, (a, b) in enumerate(zip(old, new)):
            _walk(f"{path}[{k}]", a, b, rel_tol, out)
        return
    if isinstance(old, bool) or isinstance(new, bool):
        if old != new:
            out.append(Drift(path, old, new))
        return
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        scale = max(abs(old), abs(new))
        if scale == 0:
            return
        if abs(old - new) / scale > rel_tol:
            out.append(Drift(path, old, new))
        return
    if old != new:
        out.append(Drift(path, old, new))


def compare_results(
    old: dict, new: dict, rel_tol: float = 0.05
) -> List[Drift]:
    """Drifts between two ``result_to_dict`` payloads.

    Numeric leaves within ``rel_tol`` relative difference are considered
    equal; everything else (strings, booleans, missing keys, length
    changes) must match exactly.
    """
    drifts: List[Drift] = []
    _walk("$", old, new, rel_tol, drifts)
    return drifts
