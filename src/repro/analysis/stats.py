"""Small statistics helpers for experiment aggregation."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; every value must be positive."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    total = sum(weights)
    if total == 0:
        return 0.0
    return sum(v * w for v, w in zip(values, weights)) / total


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile, p in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    rank = math.ceil(p / 100 * len(ordered))
    return ordered[rank - 1]
