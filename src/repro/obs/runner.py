"""Run one (workload, system) simulation with a live tracer attached.

The cached sweep path (:func:`repro.experiments.common.run_system`)
serves most runs straight from the content-addressed store, which is
exactly wrong for tracing — a trace needs a live engine.  This module
compiles and places through the same shared memo/caches (those are
trace-agnostic) but always simulates fresh, with the tracer and an
optional :class:`~repro.sim.timeline.TimelineRecorder` wired in, and
never writes the traced result back to the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.tracer import Tracer

# NOTE: repro.sim imports are deferred into the function bodies — the
# engine itself imports repro.obs.tracer, so importing sim here would
# close an import cycle through the obs package __init__.


@dataclass
class TracedRun:
    """Everything a traced simulation produces."""

    sim: Any                      # repro.sim.result.SimResult
    tracer: Tracer
    graph: Any
    placement: Any
    correct: bool
    recorder: Optional[Any] = None  # repro.sim.timeline.TimelineRecorder


def resolve_workload(name: str):
    """A workload from a micro name (``gather``/``micro.gather``) or a
    suite benchmark name (``bzip2``, hottest path)."""
    from repro.workloads.generator import build_workload
    from repro.workloads.micro import MICROS, build_micro
    from repro.workloads.suite import benchmark_names, get_spec

    short = name[len("micro."):] if name.startswith("micro.") else name
    if short in MICROS:
        return build_micro(short)
    try:
        spec = get_spec(name)
    except KeyError:
        known = [f"micro.{m}" for m in MICROS] + benchmark_names()
        raise KeyError(
            f"unknown region {name!r}; known: {', '.join(known)}"
        ) from None
    return build_workload(spec, path_index=0)


def traced_run(
    workload,
    system: str,
    invocations: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    record_timeline: bool = False,
    warm: bool = True,
) -> TracedRun:
    """Compile, place, and simulate *workload* under *system*, traced."""
    from repro.experiments.common import (
        DEFAULT_INVOCATIONS,
        _KNOWN_SYSTEMS,
        SYSTEMS,
        _backend_for,
        _bare_graph,
        _oracle_graph,
        _pipeline_for,
        _placement,
        compile_workload,
        workload_fingerprint,
    )
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.runtime.cache import get_cache
    from repro.runtime.fingerprint import envs_fingerprint
    from repro.sim.factory import make_engine
    from repro.sim.oracle import golden_execute
    from repro.sim.timeline import TimelineRecorder

    if system not in _KNOWN_SYSTEMS:
        raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")
    if invocations is None:
        invocations = DEFAULT_INVOCATIONS
    tracer = tracer if tracer is not None else Tracer()
    envs = workload.invocations(invocations)
    wfp = workload_fingerprint(workload)

    cfg = _pipeline_for(system)
    if system == "oracle-sw":
        graph, _ = _oracle_graph(
            workload, wfp, envs, envs_fingerprint(envs), get_cache()
        )
    elif cfg is not None:
        graph = compile_workload(workload, cfg).graph
    else:
        graph = _bare_graph(workload, wfp)

    placement = _placement(wfp, graph, None)
    hierarchy = MemoryHierarchy()
    backend = _backend_for(system, None)
    recorder = TimelineRecorder() if record_timeline else None
    # make_engine falls back (loudly, EngineModeFallback) to the
    # reference engine when $NACHOS_ENGINE=fast meets an enabled tracer.
    engine = make_engine(
        graph, placement, hierarchy, backend, recorder=recorder, tracer=tracer
    )

    mem_ops = graph.memory_ops
    addr_streams = [
        {op.op_id: (op.addr.evaluate(env), op.addr.width) for op in mem_ops}
        for env in envs
    ]
    if warm:
        for amap in addr_streams:
            for op in mem_ops:
                hierarchy.l2.access(amap[op.op_id][0], is_write=op.is_store)
        hierarchy.l2.stats.reset()
    sim = engine.run(envs, region_name=workload.name, addr_streams=addr_streams)
    golden = golden_execute(graph, envs)
    correct = golden.matches(sim.load_values, sim.memory_image)
    return TracedRun(
        sim=sim,
        tracer=tracer,
        graph=graph,
        placement=placement,
        correct=correct,
        recorder=recorder,
    )
