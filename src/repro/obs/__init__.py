"""Observability: structured tracing, metrics, and sweep profiling.

Three layers, all zero-overhead when off:

* :mod:`repro.obs.tracer` — typed per-cycle event streams from the
  engine and every disambiguation backend (``NULL_TRACER`` is the
  disabled default);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms built from runs, the result cache, and the
  sweep profiler;
* :mod:`repro.obs.profile` — per-task / per-worker wall-clock telemetry
  for the parallel sweep runtime;

plus :mod:`repro.obs.chrome` (Perfetto/Chrome-trace export) and
:mod:`repro.obs.runner` (cache-bypassing traced simulation, the engine
behind ``nachos-repro trace``).
"""

from repro.obs.chrome import chrome_trace, order_wait_latencies, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_cache,
    metrics_from_profile,
    metrics_from_run,
)
from repro.obs.profile import (
    SweepProfile,
    disable_profiling,
    enable_profiling,
    get_profile,
    profiling_enabled,
    reset_profile,
)
from repro.obs.runner import TracedRun, resolve_workload, traced_run
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    backend_counts,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SweepProfile",
    "TraceEvent",
    "TracedRun",
    "Tracer",
    "backend_counts",
    "chrome_trace",
    "disable_profiling",
    "enable_profiling",
    "get_profile",
    "metrics_from_cache",
    "metrics_from_profile",
    "metrics_from_run",
    "order_wait_latencies",
    "profiling_enabled",
    "reset_profile",
    "resolve_workload",
    "traced_run",
    "write_chrome_trace",
]
