"""Observability: structured tracing, metrics, and sweep profiling.

Three layers, all zero-overhead when off:

* :mod:`repro.obs.tracer` — typed per-cycle event streams from the
  engine and every disambiguation backend (``NULL_TRACER`` is the
  disabled default);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and histograms built from runs, the result cache, and the
  sweep profiler;
* :mod:`repro.obs.profile` — per-task / per-worker wall-clock telemetry
  for the parallel sweep runtime;

plus :mod:`repro.obs.chrome` (Perfetto/Chrome-trace export),
:mod:`repro.obs.runner` (cache-bypassing traced simulation, the engine
behind ``nachos-repro trace``), and the perf observatory —
:mod:`repro.obs.perf` (append-only NDJSON run ledger),
:mod:`repro.obs.regress` (budget-driven regression gates), and
:mod:`repro.obs.report` (the perf-history dashboard) behind
``nachos-repro perf record|check|report|ls``.
"""

from repro.obs.chrome import chrome_trace, order_wait_latencies, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_cache,
    metrics_from_profile,
    metrics_from_run,
)
from repro.obs.profile import (
    SweepProfile,
    disable_profiling,
    enable_profiling,
    get_profile,
    profiling_enabled,
    reset_profile,
)
from repro.obs.perf import (
    LEDGER_SCHEMA,
    PerfLedger,
    PerfRecord,
    capture_context,
    default_ledger_path,
    record_from_bench,
    record_from_coverage,
    record_from_fuzz,
    record_from_profile,
    record_from_registries,
    record_from_serve,
    record_from_stage5,
    record_from_vector,
)
from repro.obs.regress import (
    Budget,
    Verdict,
    check_ledger,
    load_budgets,
    render_verdicts,
)
from repro.obs.report import render_html, render_markdown
from repro.obs.runner import TracedRun, resolve_workload, traced_run
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    backend_counts,
)

__all__ = [
    "Budget",
    "Counter",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PerfLedger",
    "PerfRecord",
    "SweepProfile",
    "TraceEvent",
    "TracedRun",
    "Tracer",
    "Verdict",
    "backend_counts",
    "capture_context",
    "check_ledger",
    "chrome_trace",
    "default_ledger_path",
    "disable_profiling",
    "enable_profiling",
    "get_profile",
    "load_budgets",
    "metrics_from_cache",
    "metrics_from_profile",
    "metrics_from_run",
    "order_wait_latencies",
    "profiling_enabled",
    "record_from_bench",
    "record_from_coverage",
    "record_from_fuzz",
    "record_from_profile",
    "record_from_registries",
    "record_from_serve",
    "record_from_stage5",
    "record_from_vector",
    "render_html",
    "render_markdown",
    "render_verdicts",
    "reset_profile",
    "resolve_workload",
    "traced_run",
    "write_chrome_trace",
]
