"""Counters, gauges, and histograms for simulation and sweep telemetry.

A :class:`MetricsRegistry` is a flat, JSON-serializable namespace of
metrics.  Builders populate it from the three telemetry sources:

* :func:`metrics_from_run` — one simulation: cycles per invocation,
  backend counters and derived rates, L1 hits/misses, and (when a
  tracer rode along) the order-wait latency distribution and the LSQ
  occupancy histogram;
* :func:`metrics_from_cache` — the content-addressed result cache's
  hit/miss counters (:mod:`repro.runtime.cache`);
* :func:`metrics_from_profile` — the sweep profiler's per-task wall
  times and per-worker utilization (:mod:`repro.obs.profile`).

``nachos-repro <figure> --metrics out.json`` dumps the registry after a
sweep; ``registry.write_json(path)`` is the programmatic equivalent.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

from repro.obs.tracer import LSQ_DEQUEUE, LSQ_ENQUEUE, ORDER_WAIT, Tracer


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_json(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time numeric value (rates, fractions, utilizations)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_json(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Raw-sample histogram with summary statistics on export."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def observe_many(self, values) -> None:
        self.values.extend(values)

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100].

        An empty histogram reports 0.0 for every quantile (so summary
        pipelines never special-case it); a ``q`` outside [0, 100] is a
        caller bug and raises rather than silently clamping.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return float(ordered[rank])

    def summary(self) -> dict:
        if not self.values:
            return {"count": 0}
        return {
            "count": len(self.values),
            "min": float(min(self.values)),
            "max": float(max(self.values)),
            "mean": sum(self.values) / len(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def to_json(self) -> dict:
        return {"type": "histogram", **self.summary()}


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics with one-call JSON export."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other*'s metrics into this registry, in place.

        Same-named counters **sum**, gauges take *other*'s (newer)
        value, and histograms pool their raw samples — the semantics
        the perf-ledger builders (:mod:`repro.obs.perf`) rely on when
        combining per-source registries into one record.  A name
        registered with different metric kinds in the two registries is
        a caller bug and raises ``TypeError``.
        """
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name).set(metric.value)
            elif isinstance(metric, Histogram):
                self.histogram(name).observe_many(metric.values)
        return self

    def as_dict(self) -> dict:
        return {name: self._metrics[name].to_json() for name in self.names()}

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def metrics_from_run(
    result,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = "sim",
) -> MetricsRegistry:
    """Fold one :class:`~repro.sim.result.SimResult` into a registry."""
    reg = registry if registry is not None else MetricsRegistry()
    reg.counter(f"{prefix}.cycles").inc(result.cycles)
    reg.counter(f"{prefix}.invocations").inc(result.invocations)
    reg.counter(f"{prefix}.l1_hits").inc(result.l1_hits)
    reg.counter(f"{prefix}.l1_misses").inc(result.l1_misses)
    reg.histogram(f"{prefix}.cycles_per_invocation").observe_many(
        result.per_invocation_cycles
    )
    for name, value in result.backend_stats.as_dict().items():
        if isinstance(value, float):
            reg.gauge(f"{prefix}.backend.{name}").set(value)
        else:
            reg.counter(f"{prefix}.backend.{name}").inc(value)

    if tracer is not None:
        waits = reg.histogram(f"{prefix}.order_wait_latency")
        occupancy = reg.histogram(f"{prefix}.lsq_occupancy")
        for e in tracer.events:
            if e.kind == ORDER_WAIT:
                waits.observe(e.dur)
            elif e.kind in (LSQ_ENQUEUE, LSQ_DEQUEUE) and e.args:
                occupancy.observe(e.args.get("occupancy", 0))
    return reg


def metrics_from_cache(
    registry: Optional[MetricsRegistry] = None, prefix: str = "cache"
) -> MetricsRegistry:
    """Fold the process-wide result cache's counters into a registry."""
    from repro.runtime.cache import get_cache

    reg = registry if registry is not None else MetricsRegistry()
    cache = get_cache()
    reg.counter(f"{prefix}.hits").inc(cache.hits)
    reg.counter(f"{prefix}.misses").inc(cache.misses)
    total = cache.hits + cache.misses
    reg.gauge(f"{prefix}.hit_rate").set(cache.hits / total if total else 0.0)
    return reg


def metrics_from_profile(
    profile, registry: Optional[MetricsRegistry] = None, prefix: str = "sweep"
) -> MetricsRegistry:
    """Fold a :class:`~repro.obs.profile.SweepProfile` into a registry."""
    reg = registry if registry is not None else MetricsRegistry()
    task_hist = reg.histogram(f"{prefix}.task_seconds")
    for rec in profile.tasks:
        task_hist.observe(rec.seconds)
    reg.counter(f"{prefix}.tasks").inc(len(profile.tasks))
    reg.counter(f"{prefix}.cache_hits").inc(sum(r.hits for r in profile.tasks))
    reg.counter(f"{prefix}.cache_misses").inc(sum(r.misses for r in profile.tasks))
    worker_hist = reg.histogram(f"{prefix}.worker_busy_seconds")
    for _, busy in sorted(profile.per_worker().items()):
        worker_hist.observe(busy)
    reg.gauge(f"{prefix}.workers").set(len(profile.per_worker()))
    reg.gauge(f"{prefix}.wall_seconds").set(profile.wall_seconds)
    reg.gauge(f"{prefix}.utilization").set(profile.utilization())
    # Supervision telemetry: failed attempts by kind, bounded-retry and
    # terminal-failure totals, and checkpoint-resumed tasks.
    counts = profile.fault_counts()
    reg.counter(f"{prefix}.worker_crashes").inc(counts.get("crash", 0))
    reg.counter(f"{prefix}.timeouts").inc(counts.get("timeout", 0))
    reg.counter(f"{prefix}.corrupt_results").inc(counts.get("corrupt", 0))
    reg.counter(f"{prefix}.task_errors").inc(counts.get("error", 0))
    reg.counter(f"{prefix}.retries").inc(profile.retries)
    reg.counter(f"{prefix}.failures").inc(len(profile.failures))
    reg.counter(f"{prefix}.checkpoint_hits").inc(profile.checkpoint_hits)
    return reg
