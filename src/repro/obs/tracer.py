"""Structured event tracing for the simulator.

A :class:`Tracer` collects typed :class:`TraceEvent` s from the engine
and the disambiguation backends: op issue/complete spans, memory
accesses, and every backend decision (comparator checks and conflicts,
bloom probes, CAM searches, LSQ enqueue/dequeue with occupancy, order
waits, forwards, speculations/violations/replays).

The contract with :class:`~repro.sim.result.BackendStats` is exact:
**one trace event is emitted at every site that increments a stats
counter**, so :func:`backend_counts` over an event stream reproduces the
run's ``BackendStats`` totals (the CLI and the test suite both verify
this).

Tracing is opt-in.  The engine and backends hold ``None`` instead of a
tracer when tracing is off (the :data:`NULL_TRACER` sentinel reports
``enabled = False``), so the disabled path costs one attribute load per
hook site and allocates nothing — cached/production sweeps pay ~nothing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class TraceEvent:
    """One typed event on the simulated clock.

    ``dur == 0`` events are instants; ``dur > 0`` events are spans
    ``[t, t + dur)``.  ``op`` is the graph op id the event belongs to
    (``-1`` for region-level events), ``inv`` the invocation index, and
    ``args`` an optional payload dict (addresses, verdicts, occupancy).
    """

    __slots__ = ("kind", "t", "dur", "inv", "op", "args")

    def __init__(
        self,
        kind: str,
        t: int,
        dur: int = 0,
        inv: int = -1,
        op: int = -1,
        args: Optional[dict] = None,
    ) -> None:
        self.kind = kind
        self.t = t
        self.dur = dur
        self.inv = inv
        self.op = op
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" {self.args}" if self.args else ""
        span = f"+{self.dur}" if self.dur else ""
        return f"<{self.kind} @{self.t}{span} inv={self.inv} op={self.op}{extra}>"


# Event kinds ----------------------------------------------------------
# Engine lifecycle:
INVOCATION = "invocation"          # span: one region invocation
OP_SOURCE = "op.source"            # instant: INPUT/CONST completes
OP_EXEC = "op.exec"                # span: compute op start..complete
OP_BLOCKED = "op.blocked"          # span: memory op ready but held back
MEM_LOAD = "mem.load"              # span: cache read issue..complete
MEM_STORE = "mem.store"            # span: cache write issue..complete
MEM_FORWARD = "mem.forward"        # instant: load completed by a forward (args: src, addr, width)
# Backend decisions (counter-bearing kinds match BackendStats fields):
BLOOM_PROBE = "bloom.probe"        # args: hit (OPT-LSQ only)
CAM_SEARCH = "cam.search"
LSQ_ENQUEUE = "lsq.enqueue"        # args: occupancy, bank
LSQ_DEQUEUE = "lsq.dequeue"        # args: occupancy
LSQ_FORWARD = "lsq.forward"        # args: src
COMPARATOR_CHECK = "comparator.check"  # args: src, conflict
RUNTIME_FORWARD = "runtime.forward"    # args: src
ORDER_WAIT = "order.wait"          # span of length `wait`; args: src, edge
SPECULATION = "speculation"
VIOLATION = "violation"
REPLAY = "replay"

#: Kinds emitted by backends (rendered on backend tracks in the
#: Chrome-trace export; everything else rides the engine's PE tracks).
BACKEND_KINDS = frozenset(
    {
        BLOOM_PROBE,
        CAM_SEARCH,
        LSQ_ENQUEUE,
        LSQ_DEQUEUE,
        LSQ_FORWARD,
        COMPARATOR_CHECK,
        RUNTIME_FORWARD,
        ORDER_WAIT,
        SPECULATION,
        VIOLATION,
        REPLAY,
    }
)


class Tracer:
    """Collects :class:`TraceEvent` s; the engine keeps ``inv`` current."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.inv = -1

    def emit(
        self,
        kind: str,
        t: int,
        dur: int = 0,
        op: int = -1,
        args: Optional[dict] = None,
    ) -> None:
        self.events.append(TraceEvent(kind, t, dur, self.inv, op, args))

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        self.events.clear()


class NullTracer:
    """The disabled tracer: accepts nothing, stores nothing."""

    enabled = False
    events: tuple = ()
    inv = -1

    def emit(self, kind, t, dur=0, op=-1, args=None) -> None:  # pragma: no cover
        pass

    def __len__(self) -> int:
        return 0


#: Shared no-op instance (the engine's default).
NULL_TRACER = NullTracer()


def backend_counts(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Fold an event stream back into ``BackendStats``-shaped totals.

    Every counter in :class:`~repro.sim.result.BackendStats` has exactly
    one emitting site, so this reproduces the stats of the traced run.
    """
    counts = {
        "bloom_probes": 0,
        "bloom_hits": 0,
        "cam_checks": 0,
        "lsq_forwards": 0,
        "comparator_checks": 0,
        "comparator_conflicts": 0,
        "runtime_forwards": 0,
        "order_waits": 0,
        "speculations": 0,
        "violations": 0,
        "replays": 0,
    }
    for e in events:
        if e.kind == BLOOM_PROBE:
            counts["bloom_probes"] += 1
            if e.args and e.args.get("hit") is True:
                counts["bloom_hits"] += 1
        elif e.kind == CAM_SEARCH:
            counts["cam_checks"] += 1
        elif e.kind == LSQ_FORWARD:
            counts["lsq_forwards"] += 1
        elif e.kind == COMPARATOR_CHECK:
            counts["comparator_checks"] += 1
            if e.args and e.args.get("conflict"):
                counts["comparator_conflicts"] += 1
        elif e.kind == RUNTIME_FORWARD:
            counts["runtime_forwards"] += 1
        elif e.kind == ORDER_WAIT:
            counts["order_waits"] += 1
        elif e.kind == SPECULATION:
            counts["speculations"] += 1
        elif e.kind == VIOLATION:
            counts["violations"] += 1
        elif e.kind == REPLAY:
            counts["replays"] += 1
    return counts
