"""Wall-clock profiling of the sweep runtime.

The supervised executor (:mod:`repro.runtime.executor`) reports one
:class:`TaskRecord` per simulation task — region, system, wall seconds,
the worker that ran it, and the task's result-cache hit/miss delta —
plus one :class:`SweepRecord` per ``run_tasks`` batch, one
:class:`FaultRecord` per failed attempt (worker crash, timeout, corrupt
result, task error), one :class:`FailureRecord` per task that exhausted
its retries, and the count of tasks served from the sweep checkpoint.  Recording is
off by default (``enable()`` flips it; the disabled check is one module
attribute load per batch), so ordinary sweeps pay nothing.

``nachos-repro profile <figure>`` enables this collector, runs the
figure, and prints per-stage / per-region wall-time and cache tables;
:func:`repro.obs.metrics.metrics_from_profile` exports the same data as
a metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class TaskRecord:
    """One simulation task's execution telemetry."""

    region: str
    system: str
    seconds: float
    worker: int          # pid of the process that ran it (parent if serial)
    hits: int = 0        # result-cache hits observed during the task
    misses: int = 0


@dataclass
class SweepRecord:
    """One ``run_tasks`` batch."""

    tasks: int
    jobs: int
    wall_seconds: float


@dataclass
class FaultRecord:
    """One failed task *attempt* (the supervisor retried or gave up).

    ``kind`` is a :data:`repro.runtime.retry.FAILURE_KINDS` value:
    ``crash`` (worker died), ``timeout`` (hung past the deadline and was
    killed), ``corrupt`` (result failed to unpickle), or ``error`` (the
    task raised).
    """

    region: str
    system: str
    kind: str


@dataclass
class FailureRecord:
    """One task that exhausted its retries (terminal failure)."""

    region: str
    system: str
    kind: str
    attempts: int
    message: str = ""


@dataclass
class VectorRecord:
    """One fast-vector engine run's batch-vs-fallback telemetry.

    Reported by :class:`repro.sim.vector.VectorEngine` at the end of
    each ``run()`` while profiling is enabled: how many invocations
    replayed from a capture versus fell back to the per-event path, how
    many op executions were served by the vectorized template, and why
    each fallback happened (see the fallback table in
    :mod:`repro.sim.vector`).
    """

    region: str
    system: str
    invocations: int
    captured: int
    replayed: int
    divergences: int
    ops_vectorized: int
    ops_dynamic: int
    fallback_reasons: Dict[str, int]


@dataclass
class SweepProfile:
    """Accumulates task/sweep records while enabled."""

    enabled: bool = False
    tasks: List[TaskRecord] = field(default_factory=list)
    sweeps: List[SweepRecord] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    vectors: List[VectorRecord] = field(default_factory=list)
    checkpoint_hits: int = 0

    # -- recording (called by the executor) -----------------------------
    def record_task(
        self,
        region: str,
        system: str,
        seconds: float,
        worker: int,
        hits: int = 0,
        misses: int = 0,
    ) -> None:
        self.tasks.append(TaskRecord(region, system, seconds, worker, hits, misses))

    def record_sweep(self, tasks: int, jobs: int, wall_seconds: float) -> None:
        self.sweeps.append(SweepRecord(tasks, jobs, wall_seconds))

    def record_fault(self, region: str, system: str, kind: str) -> None:
        self.faults.append(FaultRecord(region, system, kind))

    def record_failure(
        self, region: str, system: str, kind: str, attempts: int,
        message: str = "",
    ) -> None:
        self.failures.append(FailureRecord(region, system, kind, attempts, message))

    def record_checkpoint_hits(self, n: int = 1) -> None:
        self.checkpoint_hits += n

    def record_vector(self, region: str, system: str, stats: Dict) -> None:
        self.vectors.append(
            VectorRecord(
                region=region,
                system=system,
                invocations=stats["invocations"],
                captured=stats["captured"],
                replayed=stats["replayed"],
                divergences=stats["divergences"],
                ops_vectorized=stats["ops_vectorized"],
                ops_dynamic=stats["ops_dynamic"],
                fallback_reasons=dict(stats["fallback_reasons"]),
            )
        )

    # -- rollups ---------------------------------------------------------
    @property
    def wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.sweeps)

    @property
    def task_seconds(self) -> float:
        return sum(t.seconds for t in self.tasks)

    def per_worker(self) -> Dict[int, float]:
        """pid -> busy seconds."""
        out: Dict[int, float] = {}
        for t in self.tasks:
            out[t.worker] = out.get(t.worker, 0.0) + t.seconds
        return out

    def per_region(self) -> Dict[str, Tuple[int, float]]:
        """region -> (task count, busy seconds), heaviest first."""
        acc: Dict[str, List[float]] = {}
        for t in self.tasks:
            entry = acc.setdefault(t.region, [0, 0.0])
            entry[0] += 1
            entry[1] += t.seconds
        return {
            k: (int(v[0]), v[1])
            for k, v in sorted(acc.items(), key=lambda kv: (-kv[1][1], kv[0]))
        }

    def utilization(self) -> float:
        """Busy worker-seconds over offered worker-seconds (<= 1.0)."""
        offered = sum(s.wall_seconds * max(s.jobs, 1) for s in self.sweeps)
        return self.task_seconds / offered if offered else 0.0

    def fault_counts(self) -> Dict[str, int]:
        """kind -> failed-attempt count (retried and terminal alike)."""
        out: Dict[str, int] = {}
        for f in self.faults:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    @property
    def retries(self) -> int:
        """Failed attempts that were retried (terminal ones excluded)."""
        return len(self.faults) - len(self.failures)

    def vector_rollup(self) -> Dict[str, Dict[str, object]]:
        """region -> aggregated batch/fallback counters, heaviest first."""
        acc: Dict[str, Dict[str, object]] = {}
        for v in self.vectors:
            entry = acc.setdefault(
                v.region,
                {
                    "invocations": 0,
                    "captured": 0,
                    "replayed": 0,
                    "divergences": 0,
                    "ops_vectorized": 0,
                    "ops_dynamic": 0,
                    "fallback_reasons": {},
                },
            )
            entry["invocations"] += v.invocations
            entry["captured"] += v.captured
            entry["replayed"] += v.replayed
            entry["divergences"] += v.divergences
            entry["ops_vectorized"] += v.ops_vectorized
            entry["ops_dynamic"] += v.ops_dynamic
            reasons = entry["fallback_reasons"]
            for reason, n in v.fallback_reasons.items():
                reasons[reason] = reasons.get(reason, 0) + n
        # Name-tiebreak: ``vectors`` arrives in worker completion order,
        # so without it equal-invocation regions would shuffle run to run.
        return dict(
            sorted(acc.items(), key=lambda kv: (-kv[1]["invocations"], kv[0]))
        )

    def reset(self) -> None:
        self.tasks.clear()
        self.sweeps.clear()
        self.faults.clear()
        self.failures.clear()
        self.vectors.clear()
        self.checkpoint_hits = 0


# ----------------------------------------------------------------------
# Process-wide collector
# ----------------------------------------------------------------------
_profile = SweepProfile()


def get_profile() -> SweepProfile:
    return _profile


def profiling_enabled() -> bool:
    return _profile.enabled


def enable_profiling() -> SweepProfile:
    _profile.enabled = True
    return _profile


def disable_profiling() -> None:
    _profile.enabled = False


def reset_profile() -> None:
    _profile.reset()
