"""Render the perf ledger as a static dashboard (markdown and HTML).

``nachos-repro perf report`` builds one trend table per record source
(bench / profile / vector / coverage / verify), a worst-regressions
callout fed by the budget checker, and a per-figure wall breakdown
from the newest record that carries ``figure.*`` metrics.  Output is
deterministic for a fixed ledger — no generation timestamps, sorted
series — so reports diff cleanly in CI logs and artifact stores.

Trend cells use unicode sparklines (``▁▂▃▄▅▆▇█``): each series is
scaled to its own min..max, so the shape of the history is visible at
a glance without axes.  The numbers that matter (median, latest, delta
vs median) sit next to the sparkline.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.perf import PerfRecord
from repro.obs.regress import REGRESSION, Verdict

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Per-series cap on sparkline width: older samples are summarized into
#: the leading block rather than silently dropped from the stats.
SPARK_WIDTH = 32


def sparkline(values: Sequence[float], width: int = SPARK_WIDTH) -> str:
    """Scale *values* into unicode block characters (min..max per series)."""
    if not values:
        return ""
    tail = list(values)[-width:]
    lo, hi = min(tail), max(tail)
    if hi == lo:
        return _SPARK_BLOCKS[3] * len(tail)
    span = hi - lo
    return "".join(
        _SPARK_BLOCKS[
            min(len(_SPARK_BLOCKS) - 1,
                int((v - lo) / span * len(_SPARK_BLOCKS)))
        ]
        for v in tail
    )


@dataclass
class SeriesRow:
    """One metric's history, ready to render."""

    source: str
    metric: str
    values: List[float]

    @property
    def latest(self) -> float:
        return self.values[-1]

    @property
    def median(self) -> float:
        ordered = sorted(self.values)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def delta_vs_median_pct(self) -> Optional[float]:
        if self.median == 0:
            return None
        return 100.0 * (self.latest - self.median) / abs(self.median)


@dataclass
class Dashboard:
    """The dashboard's data, separated from its two renderings."""

    sections: List[Tuple[str, List[SeriesRow]]] = field(default_factory=list)
    regressions: List[Verdict] = field(default_factory=list)
    figures: List[Tuple[str, List[float]]] = field(default_factory=list)
    record_count: int = 0


def _collect_series(records: Sequence[PerfRecord]) -> Dict[str, Dict[str, List[float]]]:
    """source -> metric -> values in ledger order."""
    out: Dict[str, Dict[str, List[float]]] = {}
    for record in records:
        per_source = out.setdefault(record.source, {})
        for metric, value in record.metrics.items():
            per_source.setdefault(metric, []).append(float(value))
    return out

#: ``figure.*``/``region.*`` series are rendered in their own breakdown
#: section, not in the per-source trend tables (hundreds of rows).
_BREAKDOWN_PREFIXES = ("figure.", "region.", "package.")


def build_dashboard(
    records: Sequence[PerfRecord],
    verdicts: Sequence[Verdict] = (),
) -> Dashboard:
    dash = Dashboard(record_count=len(records))
    for source, metrics in sorted(_collect_series(records).items()):
        rows = [
            SeriesRow(source=source, metric=metric, values=values)
            for metric, values in sorted(metrics.items())
            if not metric.startswith(_BREAKDOWN_PREFIXES)
        ]
        if rows:
            dash.sections.append((source, rows))
    dash.regressions = sorted(
        (v for v in verdicts if v.status == REGRESSION),
        key=lambda v: -(v.regression or 0.0),
    )
    # Per-figure wall breakdown: every figure.* series, heaviest latest
    # value first (name-tiebreak keeps the order deterministic).
    figures: Dict[str, List[float]] = {}
    for record in records:
        for metric, value in record.metrics.items():
            if metric.startswith("figure.") and metric.endswith(".wall_seconds"):
                name = metric[len("figure."):-len(".wall_seconds")]
                figures.setdefault(name, []).append(float(value))
    dash.figures = sorted(
        figures.items(), key=lambda kv: (-kv[1][-1], kv[0])
    )
    return dash


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.4g}"


def _fmt_delta(pct: Optional[float]) -> str:
    if pct is None:
        return "-"
    return f"{'+' if pct >= 0 else ''}{pct:.1f}%"


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def render_markdown(
    records: Sequence[PerfRecord],
    verdicts: Sequence[Verdict] = (),
    title: str = "NACHOS perf observatory",
) -> str:
    dash = build_dashboard(records, verdicts)
    lines = [f"# {title}", ""]
    lines.append(
        f"{dash.record_count} ledger record(s), "
        f"{sum(len(rows) for _, rows in dash.sections)} metric series."
    )
    lines.append("")

    if dash.regressions:
        lines.append("## Worst regressions")
        lines.append("")
        lines.append("| budget | latest | median | regression | allowed |")
        lines.append("|---|---:|---:|---:|---:|")
        for v in dash.regressions:
            lines.append(
                f"| `{v.budget.key}` | {_fmt(v.latest)} | {_fmt(v.baseline)} "
                f"| {100.0 * (v.regression or 0):+.1f}% "
                f"| {100.0 * v.budget.max_regression:.0f}% |"
            )
        lines.append("")

    for source, rows in dash.sections:
        lines.append(f"## {source}")
        lines.append("")
        lines.append("| metric | n | trend | median | latest | Δ vs median |")
        lines.append("|---|---:|---|---:|---:|---:|")
        for row in rows:
            lines.append(
                f"| `{row.metric}` | {len(row.values)} "
                f"| `{sparkline(row.values)}` | {_fmt(row.median)} "
                f"| {_fmt(row.latest)} "
                f"| {_fmt_delta(row.delta_vs_median_pct)} |"
            )
        lines.append("")

    if dash.figures:
        lines.append("## Per-figure wall breakdown")
        lines.append("")
        lines.append("| figure | n | trend | latest wall (s) |")
        lines.append("|---|---:|---|---:|")
        for name, values in dash.figures:
            lines.append(
                f"| `{name}` | {len(values)} | `{sparkline(values)}` "
                f"| {_fmt(values[-1])} |"
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
_HTML_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 70rem; padding: 0 1rem; color: #1a1a1a; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: 0.5rem 0 1.5rem; }
th, td { border-bottom: 1px solid #ddd; padding: 0.3rem 0.6rem;
         text-align: right; }
th { background: #f5f5f5; }
td.name, th.name { text-align: left; font-family: ui-monospace, monospace; }
td.spark { font-family: ui-monospace, monospace; letter-spacing: 1px;
           color: #2a6fb0; text-align: left; }
tr.bad td { background: #fdecea; }
.meta { color: #666; }
""".strip()


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                row_classes: Optional[Sequence[str]] = None) -> List[str]:
    out = ["<table>", "<tr>"]
    for i, head in enumerate(headers):
        cls = ' class="name"' if i == 0 else ""
        out.append(f"<th{cls}>{_html.escape(head)}</th>")
    out.append("</tr>")
    for r, row in enumerate(rows):
        cls = row_classes[r] if row_classes else ""
        out.append(f'<tr class="{cls}">' if cls else "<tr>")
        for i, cell in enumerate(row):
            if i == 0:
                out.append(f'<td class="name">{_html.escape(cell)}</td>')
            elif cell and all(ch in _SPARK_BLOCKS for ch in cell):
                out.append(f'<td class="spark">{_html.escape(cell)}</td>')
            else:
                out.append(f"<td>{_html.escape(cell)}</td>")
        out.append("</tr>")
    out.append("</table>")
    return out


def render_html(
    records: Sequence[PerfRecord],
    verdicts: Sequence[Verdict] = (),
    title: str = "NACHOS perf observatory",
) -> str:
    dash = build_dashboard(records, verdicts)
    parts = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        f'<p class="meta">{dash.record_count} ledger record(s), '
        f"{sum(len(rows) for _, rows in dash.sections)} metric series.</p>",
    ]

    if dash.regressions:
        parts.append("<h2>Worst regressions</h2>")
        parts.extend(_html_table(
            ["budget", "latest", "median", "regression", "allowed"],
            [
                [
                    v.budget.key, _fmt(v.latest), _fmt(v.baseline),
                    f"{100.0 * (v.regression or 0):+.1f}%",
                    f"{100.0 * v.budget.max_regression:.0f}%",
                ]
                for v in dash.regressions
            ],
            row_classes=["bad"] * len(dash.regressions),
        ))

    for source, rows in dash.sections:
        parts.append(f"<h2>{_html.escape(source)}</h2>")
        parts.extend(_html_table(
            ["metric", "n", "trend", "median", "latest", "Δ vs median"],
            [
                [
                    row.metric, str(len(row.values)), sparkline(row.values),
                    _fmt(row.median), _fmt(row.latest),
                    _fmt_delta(row.delta_vs_median_pct),
                ]
                for row in rows
            ],
        ))

    if dash.figures:
        parts.append("<h2>Per-figure wall breakdown</h2>")
        parts.extend(_html_table(
            ["figure", "n", "trend", "latest wall (s)"],
            [
                [name, str(len(values)), sparkline(values), _fmt(values[-1])]
                for name, values in dash.figures
            ],
        ))

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
