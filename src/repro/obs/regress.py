"""Budget-driven regression checking over the perf ledger.

``perf_budgets.toml`` declares, per metric series, which direction is
"better", how much relative movement the build tolerates, how many
samples the series needs before the check is meaningful, and an
absolute noise floor below which movement is ignored.  ``nachos-repro
perf check`` loads the budgets, replays the ledger, and fails (exit
non-zero) when the latest sample regresses past any budget.

The baseline is the **median of the series' history** (every sample
before the latest, after any blessing cut) — median, not mean, so one
noisy historical sample cannot move the bar.  A violation requires
*both* bounds to trip:

* relative: the latest sample is worse than the baseline by more than
  ``max_regression`` (a fraction, e.g. ``0.10`` = 10%), and
* absolute: the raw delta exceeds ``noise_floor`` (in the metric's own
  unit), so sub-second scheduler jitter on a 5-second series can never
  fail a build no matter how large it is relatively.

Intentional regressions are **blessed**, never erased: append the
offending record's fingerprint to ``[bless] fingerprints`` in the
budgets file and every series' history restarts at that record.  The
ledger itself stays append-only.

See ``docs/perf.md`` for the file format and worked examples.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:
    import tomllib
except ModuleNotFoundError:  # Python < 3.11
    tomllib = None

from repro.obs.perf import PerfRecord

#: Accepted ``direction`` values: is a smaller or a larger number better?
DIRECTIONS = ("lower", "higher")

OK = "ok"
REGRESSION = "regression"
SKIPPED = "skipped"


@dataclass
class Budget:
    """One metric series' regression budget."""

    metric: str
    source: str
    direction: str                      # "lower" | "higher"
    max_regression: float = 0.10        # relative, vs median-of-history
    min_samples: int = 3                # incl. the latest sample
    noise_floor: float = 0.0            # absolute delta that must also trip
    where: Dict[str, str] = field(default_factory=dict)  # context filter

    @property
    def key(self) -> str:
        return f"{self.source}:{self.metric}"

    def matches(self, record: PerfRecord) -> bool:
        if record.source != self.source or self.metric not in record.metrics:
            return False
        return all(
            record.context.get(k) == v for k, v in self.where.items()
        )


@dataclass
class Verdict:
    """The outcome of one budget against the ledger."""

    budget: Budget
    status: str                         # OK | REGRESSION | SKIPPED
    reason: str = ""
    samples: int = 0
    baseline: Optional[float] = None    # median of history
    latest: Optional[float] = None
    regression: Optional[float] = None  # relative; positive = worse

    @property
    def ok(self) -> bool:
        return self.status != REGRESSION

    def describe(self) -> str:
        head = f"{self.budget.key:<44} {self.status:<10}"
        if self.status == SKIPPED:
            return f"{head} {self.reason}"
        sign = "+" if (self.regression or 0) >= 0 else ""
        return (
            f"{head} latest {self.latest:.4g} vs median {self.baseline:.4g} "
            f"({sign}{100.0 * (self.regression or 0):.1f}% worse-direction, "
            f"budget {100.0 * self.budget.max_regression:.0f}%)"
        )


class BudgetError(ValueError):
    """The budgets file is malformed."""


def load_budgets(path) -> Tuple[List[Budget], List[str]]:
    """Parse ``perf_budgets.toml`` -> (budgets, blessed fingerprints)."""
    if tomllib is None:
        raise BudgetError(
            "reading perf budgets requires Python >= 3.11 (tomllib)"
        )
    raw = tomllib.loads(Path(path).read_text())
    defaults = raw.get("defaults", {})
    budgets: List[Budget] = []
    for entry in raw.get("budget", []):
        try:
            budget = Budget(
                metric=entry["metric"],
                source=entry["source"],
                direction=entry["direction"],
                max_regression=float(
                    entry.get("max_regression",
                              defaults.get("max_regression", 0.10))
                ),
                min_samples=int(
                    entry.get("min_samples", defaults.get("min_samples", 3))
                ),
                noise_floor=float(
                    entry.get("noise_floor", defaults.get("noise_floor", 0.0))
                ),
                where={str(k): str(v)
                       for k, v in entry.get("where", {}).items()},
            )
        except KeyError as exc:
            raise BudgetError(
                f"budget entry missing required key {exc.args[0]!r}: {entry}"
            ) from None
        if budget.direction not in DIRECTIONS:
            raise BudgetError(
                f"budget {budget.key}: direction must be one of "
                f"{DIRECTIONS}, got {budget.direction!r}"
            )
        if budget.max_regression < 0 or budget.noise_floor < 0:
            raise BudgetError(
                f"budget {budget.key}: thresholds must be non-negative"
            )
        budgets.append(budget)
    blessed = [str(fp) for fp in raw.get("bless", {}).get("fingerprints", [])]
    return budgets, blessed


def series_for(
    records: Sequence[PerfRecord], budget: Budget, blessed: Sequence[str]
) -> List[float]:
    """The budget's sample series, oldest first, after the blessing cut.

    Blessing a fingerprint restarts history *at* that record: samples
    before the last blessed record in the series are dropped, the
    blessed record itself becomes the first history sample.
    """
    matched = [r for r in records if budget.matches(r)]
    if blessed:
        bless_set = set(blessed)
        cut = 0
        for i, record in enumerate(matched):
            if record.fingerprint() in bless_set:
                cut = i
        matched = matched[cut:]
    return [float(r.metrics[budget.metric]) for r in matched]


def check_budget(
    records: Sequence[PerfRecord],
    budget: Budget,
    blessed: Sequence[str] = (),
) -> Verdict:
    """Evaluate one budget: latest sample vs median of its history."""
    series = series_for(records, budget, blessed)
    if len(series) < max(budget.min_samples, 2):
        return Verdict(
            budget=budget, status=SKIPPED, samples=len(series),
            reason=(
                f"insufficient samples ({len(series)} < "
                f"{max(budget.min_samples, 2)})"
            ),
        )
    history, latest = series[:-1], series[-1]
    baseline = float(statistics.median(history))
    # Normalize so positive == moved in the *worse* direction.
    delta = latest - baseline if budget.direction == "lower" else baseline - latest
    regression = delta / abs(baseline) if baseline else (1.0 if delta > 0 else 0.0)
    violated = regression > budget.max_regression and delta > budget.noise_floor
    return Verdict(
        budget=budget,
        status=REGRESSION if violated else OK,
        samples=len(series),
        baseline=baseline,
        latest=latest,
        regression=regression,
    )


def check_ledger(
    records: Sequence[PerfRecord],
    budgets: Sequence[Budget],
    blessed: Sequence[str] = (),
) -> List[Verdict]:
    """Evaluate every budget; verdicts come back in budget-file order."""
    return [check_budget(records, b, blessed) for b in budgets]


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    """Human-readable check summary (one line per budget)."""
    lines = [v.describe() for v in verdicts]
    bad = sum(1 for v in verdicts if v.status == REGRESSION)
    skipped = sum(1 for v in verdicts if v.status == SKIPPED)
    ok = len(verdicts) - bad - skipped
    lines.append(
        f"[perf check: {ok} ok, {bad} regression(s), {skipped} skipped "
        f"of {len(verdicts)} budget(s)]"
    )
    return "\n".join(lines)
