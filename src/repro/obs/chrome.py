"""Chrome-trace / Perfetto JSON export of a traced simulation.

Converts a :class:`~repro.obs.tracer.Tracer`'s event stream into the
Trace Event Format that ``chrome://tracing`` and https://ui.perfetto.dev
load directly:

* engine events (op execution spans, memory accesses, blocked waits)
  land on one track per placed PE — process "engine", thread "PE (r,c)";
* backend decision events land on per-category tracks — process
  "backend", one thread each for bloom/CAM, the LSQ, the ``==?``
  comparators, order waits, and speculation;
* LSQ occupancy additionally renders as a Perfetto counter track;
* invocations render as top-level spans on the "region" track.

Timestamps are simulated cycles reported as microseconds (1 cycle =
1 us), which keeps Perfetto's zoom/labels readable.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.tracer import (
    BACKEND_KINDS,
    COMPARATOR_CHECK,
    INVOCATION,
    LSQ_DEQUEUE,
    LSQ_ENQUEUE,
    ORDER_WAIT,
    TraceEvent,
    Tracer,
)

# Process ids of the three track groups.
_PID_REGION = 0
_PID_ENGINE = 1
_PID_BACKEND = 2

#: backend event kind -> (tid, thread label)
_BACKEND_TRACKS = {
    "bloom.probe": (1, "bloom / CAM"),
    "cam.search": (1, "bloom / CAM"),
    "lsq.enqueue": (2, "LSQ queue"),
    "lsq.dequeue": (2, "LSQ queue"),
    "lsq.forward": (2, "LSQ queue"),
    "comparator.check": (3, "==? comparators"),
    "runtime.forward": (3, "==? comparators"),
    "order.wait": (4, "order waits"),
    "speculation": (5, "speculation"),
    "violation": (5, "speculation"),
    "replay": (5, "speculation"),
}


def _meta(pid: int, name: str, tid: Optional[int] = None) -> dict:
    event = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid if tid is not None else 0,
        "args": {"name": name},
    }
    return event


def chrome_trace(
    tracer: Tracer,
    graph=None,
    placement=None,
    region: str = "",
    backend: str = "",
) -> dict:
    """Render *tracer*'s events as a Chrome-trace dict.

    *graph* (for op names) and *placement* (for PE tracks) are optional;
    without a placement, engine events fall back to one track per op.
    """
    op_name: Dict[int, str] = {}
    if graph is not None:
        op_name = {
            op.op_id: (op.name or f"{op.opcode.value}{op.op_id}")
            for op in graph.ops
        }

    cols = placement.config.cols if placement is not None else 0
    pe_label: Dict[int, str] = {}

    def engine_tid(op: int) -> int:
        if placement is None or op < 0:
            return max(op, 0)
        try:
            r, c = placement.cell_of(op)
        except KeyError:
            return 0
        tid = r * cols + c
        pe_label.setdefault(tid, f"PE ({r},{c})")
        return tid

    events: List[dict] = [
        _meta(_PID_REGION, f"region {region}".strip()),
        _meta(_PID_REGION, "invocations", tid=0),
        _meta(_PID_ENGINE, "engine (PEs)"),
        _meta(_PID_BACKEND, f"backend {backend}".strip()),
    ]
    seen_backend_tids = set()

    for e in tracer.events:
        if e.kind == INVOCATION:
            events.append(
                {
                    "name": f"inv {e.inv}",
                    "cat": INVOCATION,
                    "ph": "X",
                    "ts": e.t,
                    "dur": max(e.dur, 1),
                    "pid": _PID_REGION,
                    "tid": 0,
                    "args": {"invocation": e.inv},
                }
            )
            continue

        if e.kind in BACKEND_KINDS:
            tid, label = _BACKEND_TRACKS[e.kind]
            if tid not in seen_backend_tids:
                seen_backend_tids.add(tid)
                events.append(_meta(_PID_BACKEND, label, tid=tid))
            name = e.kind
            if e.kind == COMPARATOR_CHECK and e.args:
                name = "==? conflict" if e.args.get("conflict") else "==? clear"
            record = {
                "name": name,
                "cat": e.kind,
                "ph": "X" if e.dur else "i",
                "ts": e.t,
                "pid": _PID_BACKEND,
                "tid": tid,
                "args": dict(e.args or (), invocation=e.inv, op=e.op),
            }
            if e.dur:
                record["dur"] = e.dur
            else:
                record["s"] = "t"
            events.append(record)
            # Occupancy doubles as a Perfetto counter series.
            if e.kind in (LSQ_ENQUEUE, LSQ_DEQUEUE) and e.args:
                events.append(
                    {
                        "name": "lsq_occupancy",
                        "ph": "C",
                        "ts": e.t,
                        "pid": _PID_BACKEND,
                        "args": {"entries": e.args.get("occupancy", 0)},
                    }
                )
            continue

        tid = engine_tid(e.op)
        record = {
            "name": f"{e.kind} {op_name.get(e.op, '')}".strip(),
            "cat": e.kind,
            "ph": "X" if e.dur else "i",
            "ts": e.t,
            "pid": _PID_ENGINE,
            "tid": tid,
            "args": dict(e.args or (), invocation=e.inv, op=e.op),
        }
        if e.dur:
            record["dur"] = e.dur
        else:
            record["s"] = "t"
        events.append(record)

    for tid, label in sorted(pe_label.items()):
        events.append(_meta(_PID_ENGINE, label, tid=tid))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"region": region, "backend": backend, "unit": "1 cycle = 1us"},
    }


def write_chrome_trace(path: str, trace: dict) -> None:
    """Write a trace dict produced by :func:`chrome_trace` to *path*."""
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)


def order_wait_latencies(tracer: Tracer) -> List[int]:
    """The wait durations (cycles) of every order-wait span."""
    return [e.dur for e in tracer.events if e.kind == ORDER_WAIT]
