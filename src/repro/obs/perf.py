"""The perf-observatory run ledger: an append-only NDJSON time series.

Every instrumented entrypoint — ``benchmarks/bench_sweep.py``, the
sweep profiler behind ``nachos-repro profile``/``--ledger``, the
fast-vector batch/fallback rollup, the verify fuzz campaign, and
``tools/approx_coverage.py --json`` — folds its numbers into a
:class:`PerfRecord` and appends it to a :class:`PerfLedger`.  One
ledger, one schema, every perf *and* correctness-campaign series side
by side, so ``nachos-repro perf check`` (:mod:`repro.obs.regress`) can
enforce budgets over any of them and ``nachos-repro perf report``
(:mod:`repro.obs.report`) can render them as one dashboard.

Design constraints, all load-bearing:

* **Append-only.**  :meth:`PerfLedger.append` only ever opens the file
  in ``"a"`` mode; history is never rewritten.  Blessing an intentional
  regression happens in ``perf_budgets.toml``, not by editing history.
* **Schema-versioned.**  Every line carries ``schema``
  (:data:`LEDGER_SCHEMA`); readers skip lines from a *newer* schema
  (counted in :attr:`PerfLedger.skipped`) instead of misparsing them.
* **Byte-stable.**  A record's :meth:`~PerfRecord.fingerprint` covers
  ``(schema, source, metrics, context)`` — never the timestamp — and
  serialization is canonical JSON (sorted keys, fixed separators), so
  identical inputs produce identical bytes and fingerprints on every
  machine.  The timestamp rides along for humans only.
* **Comparable across machines.**  Context carries the git SHA, a host
  fingerprint, the engine mode, and the job count, so the regression
  checker can (via per-budget ``where`` filters) compare like with
  like.

See ``docs/perf.md`` for the file format and the CLI workflow.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Bump when the NDJSON line layout changes incompatibly.  Readers
#: accept records with ``schema <= LEDGER_SCHEMA`` and skip newer ones.
LEDGER_SCHEMA = 1

#: Default on-repo ledger location (the tracked history the scheduled
#: full-sweep workflow refreshes).  ``$NACHOS_PERF_LEDGER`` overrides.
DEFAULT_LEDGER = Path("perf") / "history.ndjson"


def default_ledger_path() -> Path:
    env = os.environ.get("NACHOS_PERF_LEDGER")
    return Path(env) if env else DEFAULT_LEDGER


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Context capture
# ----------------------------------------------------------------------
def git_sha() -> str:
    """The repo's short commit SHA (``$NACHOS_GIT_SHA`` overrides).

    Falls back to ``"unknown"`` outside a git checkout — records are
    still valid, just not attributable to a commit.
    """
    env = os.environ.get("NACHOS_GIT_SHA")
    if env:
        return env
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def host_fingerprint() -> str:
    """A short stable id for this machine (``$NACHOS_HOST_ID`` overrides).

    Hashes node name, platform, and CPU count — enough to tell two
    runners apart without leaking anything, stable across reboots.
    """
    env = os.environ.get("NACHOS_HOST_ID")
    if env:
        return env
    raw = "|".join(
        [platform.node(), platform.system(), platform.machine(),
         str(os.cpu_count() or 0)]
    )
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:12]


def capture_context(
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    mode: Optional[str] = None,
    **extra: Any,
) -> Dict[str, str]:
    """Standard record context: git SHA + host + run shape."""
    ctx: Dict[str, str] = {"git_sha": git_sha(), "host": host_fingerprint()}
    if engine is not None:
        ctx["engine"] = str(engine)
    if jobs is not None:
        ctx["jobs"] = str(jobs)
    if mode is not None:
        ctx["mode"] = str(mode)
    for key, value in extra.items():
        if value is not None:
            ctx[str(key)] = str(value)
    return ctx


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass
class PerfRecord:
    """One ledger line: a named bag of numbers plus its provenance."""

    source: str                       # "bench" | "profile" | "vector" | ...
    metrics: Dict[str, float]
    context: Dict[str, str] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA
    ts: Optional[str] = None          # ISO-8601 UTC; informational only

    def fingerprint(self) -> str:
        """Content hash over everything except the timestamp."""
        body = {
            "schema": self.schema,
            "source": self.source,
            "metrics": self.metrics,
            "context": self.context,
        }
        return hashlib.sha256(
            _canonical_json(body).encode("utf-8")
        ).hexdigest()[:16]

    def to_line(self) -> str:
        """The NDJSON line (canonical JSON; byte-stable for fixed ts)."""
        payload = {
            "schema": self.schema,
            "source": self.source,
            "metrics": self.metrics,
            "context": self.context,
            "fp": self.fingerprint(),
        }
        if self.ts is not None:
            payload["ts"] = self.ts
        return _canonical_json(payload)

    @classmethod
    def from_line(cls, line: str) -> "PerfRecord":
        data = json.loads(line)
        return cls(
            source=data["source"],
            metrics={k: float(v) for k, v in data["metrics"].items()},
            context={k: str(v) for k, v in data.get("context", {}).items()},
            schema=int(data.get("schema", 0)),
            ts=data.get("ts"),
        )


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


class PerfLedger:
    """Append-only NDJSON file of :class:`PerfRecord` s."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.skipped = 0  # newer-schema / unparsable lines seen by records()

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: PerfRecord, ts: Optional[str] = None) -> str:
        """Append one record (stamping ``ts`` unless already set).

        Returns the record's fingerprint.  The file is only ever opened
        for append — existing lines are never touched.
        """
        if record.ts is None:
            record.ts = ts if ts is not None else _utc_now_iso()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(record.to_line() + "\n")
        return record.fingerprint()

    def records(self) -> List[PerfRecord]:
        """All parseable records in file (= chronological) order.

        Lines with a newer schema than this reader understands, or that
        fail to parse, are skipped and counted in :attr:`skipped` — an
        old checkout reading a new ledger degrades, it doesn't crash.
        """
        self.skipped = 0
        out: List[PerfRecord] = []
        if not self.path.exists():
            return out
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = PerfRecord.from_line(line)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.skipped += 1
                continue
            if record.schema > LEDGER_SCHEMA:
                self.skipped += 1
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self.records())


# ----------------------------------------------------------------------
# Builders — one per instrumented entrypoint
# ----------------------------------------------------------------------
def record_from_bench(
    report: Mapping[str, Any], context: Optional[Dict[str, str]] = None
) -> PerfRecord:
    """Fold a ``bench_sweep.py`` report (``BENCH_sweep.json``) into a record.

    Carries cold/warm wall, the warm speedup, the cache hit rate, the
    per-figure wall breakdown (``figure.<name>.wall_seconds``), and —
    when the report ran ``--engine-compare`` — per-mode wall+CPU and
    the fast / fast-vector speedups.
    """
    metrics: Dict[str, float] = {}
    for key in (
        "cold_seconds", "warm_seconds", "warm_speedup_vs_cold",
        "warm_speedup_vs_seed", "cold_speedup_vs_seed", "chaos_seconds",
    ):
        value = report.get(key)
        if value is not None:
            metrics[key] = float(value)
    cache = report.get("cache") or {}
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    if hits or misses:
        metrics["cache_hit_rate"] = hits / (hits + misses)
    for key, value in (report.get("engine_compare") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[key] = float(value)
    for name, seconds in (report.get("per_figure_wall_seconds") or {}).items():
        metrics[f"figure.{name}.wall_seconds"] = float(seconds)
    ctx = context if context is not None else capture_context(
        engine="reference",
        jobs=report.get("jobs"),
        mode=report.get("mode"),
    )
    return PerfRecord(source="bench", metrics=metrics, context=ctx)


def record_from_profile(
    profile,
    stage_seconds: Optional[Mapping[str, float]] = None,
    context: Optional[Dict[str, str]] = None,
) -> PerfRecord:
    """Fold a :class:`~repro.obs.profile.SweepProfile` into a record.

    Per-figure wall comes from ``stage_seconds`` (the CLI's per-stage
    timings); the profile contributes the task/worker/cache/fault
    rollups.
    """
    hits = sum(t.hits for t in profile.tasks)
    misses = sum(t.misses for t in profile.tasks)
    metrics: Dict[str, float] = {
        "tasks": float(len(profile.tasks)),
        "task_seconds": profile.task_seconds,
        "sweep_wall_seconds": profile.wall_seconds,
        "utilization": profile.utilization(),
        "cache_hits": float(hits),
        "cache_misses": float(misses),
        "retries": float(profile.retries),
        "failures": float(len(profile.failures)),
        "checkpoint_hits": float(profile.checkpoint_hits),
    }
    if hits or misses:
        metrics["cache_hit_rate"] = hits / (hits + misses)
    for region, (count, seconds) in profile.per_region().items():
        metrics[f"region.{region}.seconds"] = seconds
        metrics[f"region.{region}.tasks"] = float(count)
    for name, seconds in (stage_seconds or {}).items():
        metrics[f"figure.{name}.wall_seconds"] = float(seconds)
    ctx = context if context is not None else capture_context()
    return PerfRecord(source="profile", metrics=metrics, context=ctx)


def record_from_vector(
    profile, context: Optional[Dict[str, str]] = None
) -> Optional[PerfRecord]:
    """Fold the fast-vector batch-vs-fallback rollup into a record.

    Returns ``None`` when the run recorded no
    :class:`~repro.obs.profile.VectorRecord` s (the engine never ran in
    ``fast-vector`` mode), so callers can skip the append entirely.
    """
    rollup = profile.vector_rollup()
    if not rollup:
        return None
    totals = {
        "invocations": 0, "captured": 0, "replayed": 0,
        "divergences": 0, "ops_vectorized": 0, "ops_dynamic": 0,
    }
    for entry in rollup.values():
        for key in totals:
            totals[key] += entry[key]
    metrics: Dict[str, float] = {k: float(v) for k, v in totals.items()}
    if totals["invocations"]:
        metrics["replay_fraction"] = totals["replayed"] / totals["invocations"]
    ops = totals["ops_vectorized"] + totals["ops_dynamic"]
    if ops:
        metrics["vectorized_op_fraction"] = totals["ops_vectorized"] / ops
    for region, entry in rollup.items():
        if entry["invocations"]:
            metrics[f"region.{region}.replay_fraction"] = (
                entry["replayed"] / entry["invocations"]
            )
    ctx = context if context is not None else capture_context(
        engine="fast-vector"
    )
    return PerfRecord(source="vector", metrics=metrics, context=ctx)


def record_from_coverage(
    summary: Mapping[str, Any], context: Optional[Dict[str, str]] = None
) -> PerfRecord:
    """Fold ``tools/approx_coverage.py --json`` output into a record."""
    metrics: Dict[str, float] = {
        "total_pct": float(summary["total"]["pct"]),
        "total_lines": float(summary["total"]["lines"]),
        "total_hit": float(summary["total"]["hit"]),
    }
    for pkg, entry in summary.get("packages", {}).items():
        name = pkg.replace("/", ".")
        metrics[f"package.{name}.pct"] = float(entry["pct"])
    ctx = context if context is not None else capture_context()
    return PerfRecord(source="coverage", metrics=metrics, context=ctx)


def record_from_fuzz(
    regions: int,
    runs: int,
    failures: int,
    wall_seconds: float,
    seed: int,
    context: Optional[Dict[str, str]] = None,
) -> PerfRecord:
    """Fold a verify fuzz campaign's stats into a record."""
    metrics = {
        "regions": float(regions),
        "runs": float(runs),
        "failures": float(failures),
        "wall_seconds": float(wall_seconds),
        "runs_per_second": runs / wall_seconds if wall_seconds > 0 else 0.0,
    }
    ctx = context if context is not None else capture_context(seed=seed)
    return PerfRecord(source="verify", metrics=metrics, context=ctx)


def record_from_stage5(
    regions: int,
    symbolic_pairs: int,
    resolved_no: int,
    resolved_must: int,
    context: Optional[Dict[str, str]] = None,
) -> PerfRecord:
    """Fold the stage-5 precision stats of a workload sweep into a record.

    ``symbolic_pairs`` counts the MAY pairs stages 1--4 left behind
    *because* of symbolic offsets; ``resolved_*`` count how many of
    those the separation-logic checker cracked.  Tracked by ``perf
    check`` so a precision regression (a refactor that stops resolving
    the sweep's symbolic pairs) fails CI like a throughput regression.
    """
    resolved = resolved_no + resolved_must
    metrics = {
        "regions": float(regions),
        "symbolic_pairs": float(symbolic_pairs),
        "resolved_no": float(resolved_no),
        "resolved_must": float(resolved_must),
        "resolved": float(resolved),
        "resolved_fraction": resolved / symbolic_pairs if symbolic_pairs else 0.0,
    }
    ctx = context if context is not None else capture_context()
    return PerfRecord(source="stage5", metrics=metrics, context=ctx)


def record_from_registries(
    registries: Iterable[MetricsRegistry],
    source: str = "metrics",
    context: Optional[Dict[str, str]] = None,
) -> PerfRecord:
    """Merge metrics registries into one flat ledger record.

    Counters and gauges keep their values; histograms flatten to their
    summary statistics (``<name>.p50`` etc.).  Multiple registries are
    combined with :meth:`~repro.obs.metrics.MetricsRegistry.merge`, so
    same-named counters sum and same-named histograms pool samples.
    """
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    metrics: Dict[str, float] = {}
    for name in merged.names():
        metric = merged._metrics[name]
        if isinstance(metric, (Counter, Gauge)):
            metrics[name] = float(metric.value)
        elif isinstance(metric, Histogram):
            for key, value in metric.summary().items():
                metrics[f"{name}.{key}"] = float(value)
    ctx = context if context is not None else capture_context()
    return PerfRecord(source=source, metrics=metrics, context=ctx)


def record_from_serve(
    report: Mapping[str, Any], context: Optional[Dict[str, str]] = None
) -> PerfRecord:
    """Fold a ``bench_serve.py`` report (``BENCH_serve.json``) into a record.

    Carries request latency percentiles, sustained QPS, the cache hit
    rate and request/task dedup rates, plus the daemon-side counters the
    load generator scraped from ``/metrics`` (``daemon.<name>``).  A
    ``--shards`` report (``mode="shards"``) additionally folds in the
    fleet metrics — cross-shard hit rate, peer-hop latency, and the
    kill/rejoin phase timings — which the ``mode = "shards"`` budgets
    in ``perf_budgets.toml`` then gate.
    """
    metrics: Dict[str, float] = {}
    for key in (
        "requests", "concurrency", "wall_seconds", "qps",
        "p50_latency_seconds", "p90_latency_seconds", "p99_latency_seconds",
        "mean_latency_seconds", "cache_hit_rate", "dedup_rate", "errors",
        "chaos_wall_seconds", "chaos_retries",
        # --shards fleet metrics
        "shards", "cross_shard_hits", "cross_shard_lookups",
        "cross_shard_hit_rate", "peer_fetch_count",
        "peer_fetch_mean_seconds", "peer_fetch_p50_seconds",
        "peer_fetch_p99_seconds", "store_hits",
        "killed_shard_wall_seconds", "killed_shard_errors",
        "rejoin_seconds", "rejoin_store_hits",
    ):
        value = report.get(key)
        if value is not None:
            metrics[key] = float(value)
    for name, value in (report.get("daemon") or {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            metrics[f"daemon.{name}"] = float(value)
    ctx = context if context is not None else capture_context(
        engine=report.get("engine") or "reference",
        jobs=report.get("jobs"),
        mode=report.get("mode"),
    )
    return PerfRecord(source="serve", metrics=metrics, context=ctx)
