"""CGRA geometry and network parameters (paper Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CGRAConfig:
    """A grid of homogeneous functional units with a static mesh."""

    rows: int = 32
    cols: int = 32
    #: Cycles for an operand to traverse one mesh link.
    hop_latency: int = 1
    #: Links an operand traverses per Manhattan-distance unit (1:1 mesh).
    #: The cache interface sits along row 0 (the grid edge).
    mem_edge_row: int = 0

    @property
    def capacity(self) -> int:
        return self.rows * self.cols

    @classmethod
    def paper_default(cls) -> "CGRAConfig":
        return cls(rows=32, cols=32)
