"""Greedy dataflow placement onto the CGRA grid.

The paper reuses a previously released mapping pass; for the cycle model
what matters is the *route latency* between communicating functional
units and the link count (for network energy).  We use a deterministic
greedy placer: operations are placed in topological (program) order, each
at the free cell closest to the centroid of its already-placed producers;
sources (inputs/constants) and memory operations are biased toward the
memory edge of the grid, where the cache interface lives.

Routes are Manhattan paths on the static mesh: latency = hops *
``hop_latency`` and energy = hops * per-link energy (charged by the
energy model, not here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cgra.config import CGRAConfig
from repro.ir.graph import DFGraph

Cell = Tuple[int, int]


@dataclass
class Placement:
    """Maps op ids to grid cells and answers routing queries."""

    config: CGRAConfig
    cells: Dict[int, Cell] = field(default_factory=dict)

    def cell_of(self, op_id: int) -> Cell:
        return self.cells[op_id]

    def hops(self, src: int, dst: int) -> int:
        """Mesh hops between two placed operations."""
        (r1, c1), (r2, c2) = self.cells[src], self.cells[dst]
        return abs(r1 - r2) + abs(c1 - c2)

    def route_latency(self, src: int, dst: int) -> int:
        return self.hops(src, dst) * self.config.hop_latency

    def edge_hops(self, op_id: int) -> int:
        """Hops from an op's FU to the cache interface at the grid edge."""
        r, _ = self.cells[op_id]
        return abs(r - self.config.mem_edge_row)

    def xy_route(self, src: int, dst: int):
        """The directed links of the XY (column-then-row... X-first)
        route between two ops: ((r, c), (r', c')) per hop."""
        (r1, c1), (r2, c2) = self.cells[src], self.cells[dst]
        links = []
        r, c = r1, c1
        step = 1 if c2 > c else -1
        while c != c2:
            links.append(((r, c), (r, c + step)))
            c += step
        step = 1 if r2 > r else -1
        while r != r2:
            links.append(((r, c), (r + step, c)))
            r += step
        return links

    def edge_latency(self, op_id: int) -> int:
        return self.edge_hops(op_id) * self.config.hop_latency

    @property
    def used_cells(self) -> int:
        return len(self.cells)


def _spiral(center: Cell, rows: int, cols: int) -> Iterable[Cell]:
    """Cells in increasing Manhattan distance from *center* (deterministic)."""
    cr, cc = center
    max_d = rows + cols
    for d in range(max_d + 1):
        for dr in range(-d, d + 1):
            dc = d - abs(dr)
            for step in ((dr, dc), (dr, -dc)) if dc else ((dr, 0),):
                r, c = cr + step[0], cc + step[1]
                if 0 <= r < rows and 0 <= c < cols:
                    yield (r, c)


def _refine(placement: Placement, graph: DFGraph, sweeps: int = 2) -> None:
    """Greedy hill-climbing refinement: move ops toward their partners.

    For each op (in a deterministic order) compute its personal wirelength
    — hops to every producer and consumer, plus the cache-edge distance
    for memory ops — and relocate it to the best free cell near the
    centroid of its partners when that strictly reduces the cost.  A few
    sweeps recover most of what the constructive pass left on the table,
    standing in for the annealing placers real CGRA mappers use.
    """
    cfg = placement.config
    taken = set(placement.cells.values())
    partners: Dict[int, List[int]] = {op.op_id: list(op.inputs) for op in graph.ops}
    for op in graph.ops:
        for src in op.inputs:
            partners[src].append(op.op_id)

    def cost(op_id: int, cell: Cell) -> int:
        r, c = cell
        total = 0
        for other in partners[op_id]:
            orr, occ = placement.cells[other]
            total += abs(r - orr) + abs(c - occ)
        if graph.op(op_id).is_memory:
            total += 2 * abs(r - cfg.mem_edge_row)
        return total

    for _ in range(sweeps):
        moved = False
        for op in graph.ops:
            op_id = op.op_id
            others = partners[op_id]
            if not others:
                continue
            cur = placement.cells[op_id]
            cur_cost = cost(op_id, cur)
            cr = sum(placement.cells[o][0] for o in others) // len(others)
            cc = sum(placement.cells[o][1] for o in others) // len(others)
            best, best_cost = cur, cur_cost
            for cand in _spiral((cr, cc), cfg.rows, cfg.cols):
                d = abs(cand[0] - cr) + abs(cand[1] - cc)
                if d > 4:  # candidates beyond this cannot beat a local move
                    break
                if cand != cur and cand in taken:
                    continue
                cand_cost = cost(op_id, cand)
                if cand_cost < best_cost:
                    best, best_cost = cand, cand_cost
            if best != cur:
                taken.discard(cur)
                taken.add(best)
                placement.cells[op_id] = best
                moved = True
        if not moved:
            break


def place_region(graph: DFGraph, config: Optional[CGRAConfig] = None) -> Placement:
    """Place every operation of *graph* onto the grid.

    Raises ``ValueError`` if the region exceeds the grid capacity — the
    regions of Table II (up to 559 ops) all fit a 32x32 fabric.
    """
    cfg = config or CGRAConfig.paper_default()
    if len(graph) > cfg.capacity:
        raise ValueError(
            f"region '{graph.name}' has {len(graph)} ops; grid capacity is {cfg.capacity}"
        )

    placement = Placement(cfg)
    taken: set = set()
    edge = cfg.mem_edge_row
    mid = cfg.cols // 2

    def claim(preferred: Cell) -> Cell:
        for cell in _spiral(preferred, cfg.rows, cfg.cols):
            if cell not in taken:
                taken.add(cell)
                return cell
        raise AssertionError("grid capacity checked above")

    for op in graph.ops:
        if op.inputs:
            # Sit next to the producer whose value arrives last (the
            # youngest input): that edge is the op's critical operand, so
            # minimizing its route length minimizes the op's start time —
            # the same greedy heuristic list-scheduling mappers use.
            critical = max(op.inputs)
            preferred = placement.cells[critical]
        elif op.is_memory:
            preferred = (edge, mid)
        else:
            preferred = (min(edge + 1, cfg.rows - 1), mid)
        placement.cells[op.op_id] = claim(preferred)
    _refine(placement, graph)
    return placement
