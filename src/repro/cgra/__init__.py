"""CGRA spatial-fabric model (Dyser-like 32x32 grid, paper Section III).

Each functional unit of the grid hosts exactly one operation of the
region's dataflow graph; values travel over a static mesh operand network
whose per-link latency and energy the simulator charges per hop.  Memory
operations talk to the cache at the grid edge.
"""

from repro.cgra.config import CGRAConfig
from repro.cgra.placement import Placement, place_region

__all__ = ["CGRAConfig", "Placement", "place_region"]
