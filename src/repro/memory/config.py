"""Cache and hierarchy configuration (defaults from paper Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    latency: int = 3

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of ways*line_bytes"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class HierarchyConfig:
    """Two-level hierarchy + DRAM, as in the paper's framework.

    * L1: 64 KB, 4-way, 3 cycles (private to the accelerator)
    * LLC: 4 MB, 16-way, 25 cycles (shared with the host)
    * Memory: 200 cycles
    """

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1", 64 * 1024, 4, latency=3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 4 * 1024 * 1024, 16, latency=25)
    )
    memory_latency: int = 200
    mshr_entries: int = 16
    cache_ports: int = 2

    @classmethod
    def paper_default(cls) -> "HierarchyConfig":
        return cls()
