"""Cache-hierarchy substrate (paper Figure 3 parameters).

The accelerator owns a private L1 and shares an inclusive L2/LLC with the
host CPU; main memory sits behind that.  The model is functional +
latency-accurate: each access updates cache state and returns its latency,
with MSHR-style merging of concurrent misses to the same line.
"""

from repro.memory.config import CacheConfig, HierarchyConfig
from repro.memory.cache import CacheStats, SetAssociativeCache
from repro.memory.hierarchy import AccessResult, MemoryHierarchy

__all__ = [
    "AccessResult",
    "CacheConfig",
    "CacheStats",
    "HierarchyConfig",
    "MemoryHierarchy",
    "SetAssociativeCache",
]
