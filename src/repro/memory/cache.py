"""A set-associative cache with LRU replacement and write-back lines."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.config import CacheConfig


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.read_hits = self.read_misses = 0
        self.write_hits = self.write_misses = 0
        self.evictions = self.writebacks = 0


class SetAssociativeCache:
    """LRU set-associative cache over line addresses.

    Tracks presence and dirtiness only — the simulator keeps data values
    elsewhere; a timing/energy model needs no line contents.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # set index -> OrderedDict[tag -> dirty]; LRU at the front.
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}

    # ------------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr // self.config.line_bytes

    def _locate(self, line: int):
        idx = line % self.config.n_sets
        return idx, self._sets.setdefault(idx, OrderedDict())

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> bool:
        """Presence check with no state change (used by MSHR logic)."""
        line = self.line_of(addr)
        _, ways = self._locate(line)
        return line in ways

    def access(self, addr: int, is_write: bool) -> bool:
        """Access a byte address; returns True on hit.  Misses allocate."""
        line = self.line_of(addr)
        _, ways = self._locate(line)
        hit = line in ways
        if hit:
            ways.move_to_end(line)
            if is_write:
                ways[line] = True
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
            return True

        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        self.fill(line, dirty=is_write)
        return False

    def fill(self, line: int, dirty: bool = False) -> Optional[int]:
        """Install *line*; returns the evicted line (if any)."""
        _, ways = self._locate(line)
        victim = None
        if line in ways:
            ways.move_to_end(line)
            ways[line] = ways[line] or dirty
            return None
        if len(ways) >= self.config.ways:
            victim, was_dirty = ways.popitem(last=False)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.writebacks += 1
        ways[line] = dirty
        return victim

    def invalidate(self, line: int) -> None:
        _, ways = self._locate(line)
        ways.pop(line, None)

    def flush(self) -> None:
        self._sets.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets.values())
