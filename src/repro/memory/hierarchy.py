"""Two-level hierarchy with MSHR merging and port arbitration.

``access(addr, is_write, cycle)`` returns when the access completes and
which level served it.  Concurrent misses to the same line merge into one
in-flight fill (MSHR behaviour); a bounded number of outstanding misses
and a bounded number of cache ports provide the back-pressure the
non-blocking memory interface of the paper's accelerator would see.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.memory.cache import SetAssociativeCache
from repro.memory.config import HierarchyConfig


class ServedBy(enum.Enum):
    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"
    MSHR = "mshr"  # merged into an already outstanding fill


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access."""

    start: int          # cycle the access actually began (after port wait)
    complete: int       # cycle the data is available / write retired
    served_by: ServedBy

    @property
    def latency(self) -> int:
        return self.complete - self.start


class MemoryHierarchy:
    """The accelerator-visible memory system."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig.paper_default()
        self.l1 = SetAssociativeCache(self.config.l1)
        self.l2 = SetAssociativeCache(self.config.l2)
        self._outstanding: Dict[int, int] = {}  # line -> fill-complete cycle
        self._port_free: List[int] = [0] * self.config.cache_ports

    # ------------------------------------------------------------------
    def _claim_port(self, cycle: int) -> int:
        """Return the cycle the earliest-free port can start this access."""
        idx = min(range(len(self._port_free)), key=lambda i: self._port_free[i])
        start = max(cycle, self._port_free[idx])
        self._port_free[idx] = start + 1
        return start

    def _purge(self, cycle: int) -> None:
        done = [line for line, ready in self._outstanding.items() if ready <= cycle]
        for line in done:
            del self._outstanding[line]

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool, cycle: int) -> AccessResult:
        """Perform a timed access beginning no earlier than *cycle*."""
        start = self._claim_port(cycle)
        self._purge(start)
        line = self.l1.line_of(addr)

        # Merge with an in-flight fill for the same line.
        if line in self._outstanding:
            ready = self._outstanding[line]
            self.l1.access(addr, is_write)  # counts as (eventual) hit
            return AccessResult(start, max(ready, start + self.config.l1.latency), ServedBy.MSHR)

        if self.l1.access(addr, is_write):
            return AccessResult(start, start + self.config.l1.latency, ServedBy.L1)

        # L1 miss: MSHR slot needed; stall if all slots busy.
        if len(self._outstanding) >= self.config.mshr_entries:
            earliest = min(self._outstanding.values())
            start = max(start, earliest)
            self._purge(start)

        if self.l2.access(addr, is_write):
            latency = self.config.l2.latency
            served = ServedBy.L2
        else:
            latency = self.config.memory_latency
            served = ServedBy.MEMORY
        complete = start + latency
        self._outstanding[line] = complete
        return AccessResult(start, complete, served)

    # ------------------------------------------------------------------
    def warm(self, addrs, is_write: bool = False) -> None:
        """Pre-touch addresses without timing (warm-up helper)."""
        for addr in addrs:
            self.l1.access(addr, is_write)
            self.l2.access(addr, is_write)

    def drain(self, cycle: int) -> int:
        """Cycle when all outstanding fills retire (fence semantics)."""
        self._purge(cycle)
        if not self._outstanding:
            return cycle
        return max(self._outstanding.values())

    def reset_timing(self) -> None:
        """Forget ports/MSHRs but keep cache contents (between regions)."""
        self._outstanding.clear()
        self._port_free = [0] * self.config.cache_ports
