"""repro — a reproduction of NACHOS (HPCA 2018).

NACHOS is software-driven, hardware-assisted memory disambiguation for
dataflow accelerators: an LLVM-style alias-analysis pipeline labels every
pair of memory operations NO / MAY / MUST, the dataflow fabric enforces
the proven orderings as 1-bit edges, and a decentralized ``==?``
comparator checks the compiler's leftover MAY pairs at runtime — in place
of a centralized load-store queue.

Quick start::

    from repro import build_workload, compare_systems, get_spec

    workload = build_workload(get_spec("equake"))
    result = compare_systems(workload, invocations=40)
    print(result.slowdown_pct("nachos"))   # vs the OPT-LSQ baseline

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.ir`          — region dataflow-graph IR
* :mod:`repro.programs`    — program model + NEEDLE-like extraction
* :mod:`repro.compiler`    — the 4-stage NACHOS-SW alias pipeline
* :mod:`repro.cgra`        — CGRA grid, placement, operand network
* :mod:`repro.memory`      — L1/L2/DRAM hierarchy
* :mod:`repro.sim`         — cycle engine + the three backends
* :mod:`repro.energy`      — event-based energy model
* :mod:`repro.workloads`   — the 27-benchmark synthetic suite
* :mod:`repro.experiments` — one module per paper table/figure
"""

from repro.compiler import AliasLabel, AliasPipeline, PipelineConfig, compile_region
from repro.experiments.common import compare_systems, run_system
from repro.ir import (
    AddressExpr,
    AffineExpr,
    DFGraph,
    IVar,
    MemObject,
    MemorySpace,
    Opcode,
    PointerParam,
    RegionBuilder,
    Sym,
)
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    golden_execute,
)
from repro.workloads import SUITE, BenchmarkSpec, build_workload, get_spec

__version__ = "1.0.0"

__all__ = [
    "AddressExpr",
    "AffineExpr",
    "AliasLabel",
    "AliasPipeline",
    "BenchmarkSpec",
    "DFGraph",
    "DataflowEngine",
    "IVar",
    "MemObject",
    "MemorySpace",
    "NachosBackend",
    "NachosSWBackend",
    "Opcode",
    "OptLSQBackend",
    "PipelineConfig",
    "PointerParam",
    "RegionBuilder",
    "SUITE",
    "Sym",
    "build_workload",
    "compare_systems",
    "compile_region",
    "get_spec",
    "golden_execute",
    "run_system",
    "__version__",
]
