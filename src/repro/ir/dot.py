"""Graphviz DOT export of region dataflow graphs.

Renders the region's structure the way the paper's Figures 4/8 draw it:
data edges solid, ORDER edges dashed, FORWARD edges bold, MAY edges
dotted — memory operations as boxes, compute as ellipses.  The output is
plain DOT text; render with ``dot -Tsvg region.dot``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.graph import DFGraph, MDEKind
from repro.ir.opcodes import Opcode

_MDE_STYLE = {
    MDEKind.ORDER: 'style=dashed color="firebrick" label="O"',
    MDEKind.FORWARD: 'style=bold color="forestgreen" label="F"',
    MDEKind.MAY: 'style=dotted color="darkorange" label="M?"',
}


def _node_attrs(op) -> str:
    label = op.name or f"{op.opcode.value}{op.op_id}"
    if op.is_load:
        return f'label="LD {label}" shape=box fillcolor="lightblue" style=filled'
    if op.is_store:
        return f'label="ST {label}" shape=box fillcolor="lightsalmon" style=filled'
    if op.opcode in (Opcode.INPUT, Opcode.CONST):
        return f'label="{label}" shape=plaintext'
    if op.opcode in (Opcode.SPAD_LOAD, Opcode.SPAD_STORE):
        return f'label="{label}" shape=box style=rounded'
    return f'label="{label}"'


def graph_to_dot(
    graph: DFGraph,
    include_compute: bool = True,
    rankdir: str = "TB",
) -> str:
    """Render *graph* as DOT.  ``include_compute=False`` keeps only the
    memory operations and MDEs (the disambiguation skeleton)."""
    lines: List[str] = [
        f'digraph "{graph.name}" {{',
        f"  rankdir={rankdir};",
        '  node [fontname="sans-serif" fontsize=10];',
        '  edge [fontname="sans-serif" fontsize=9];',
    ]
    visible = {
        op.op_id
        for op in graph.ops
        if include_compute or op.is_memory
    }
    for op in graph.ops:
        if op.op_id in visible:
            lines.append(f"  n{op.op_id} [{_node_attrs(op)}];")
    if include_compute:
        for op in graph.ops:
            for src in op.inputs:
                lines.append(f"  n{src} -> n{op.op_id};")
    for edge in graph.mdes:
        lines.append(
            f"  n{edge.src} -> n{edge.dst} [{_MDE_STYLE[edge.kind]}];"
        )
    lines.append("}")
    return "\n".join(lines)


def dump_dot(graph: DFGraph, path: str, **kwargs) -> None:
    with open(path, "w") as fh:
        fh.write(graph_to_dot(graph, **kwargs))
