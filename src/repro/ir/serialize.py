"""JSON (de)serialization of region graphs.

Lets a compiled region — ops, symbolic addresses, and MDEs — be saved
and reloaded with full fidelity: base-object identity, pointer
provenance, induction-variable domains, and opaque symbols all survive
the round trip, so the alias pipeline produces identical labels on the
reloaded graph.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.ir.address import (
    AddressExpr,
    AffineExpr,
    IVar,
    MemObject,
    MemorySpace,
    PointerParam,
    Sym,
)
from repro.ir.graph import DFGraph, MDEKind, MemoryDependencyEdge
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation


class _Interner:
    """Assigns stable indices to shared symbolic entities."""

    def __init__(self) -> None:
        self.objects: Dict[int, MemObject] = {}
        self.params: Dict[int, PointerParam] = {}
        self.ivars: Dict[str, IVar] = {}
        self.syms: Dict[str, Sym] = {}

    def intern_object(self, obj: MemObject) -> int:
        self.objects[obj.uid] = obj
        return obj.uid

    def intern_param(self, param: PointerParam) -> int:
        self.params[param.uid] = param
        self.intern_object(param.runtime_object)
        if param.provenance is not None:
            self.intern_object(param.provenance)
        return param.uid


def _affine_to_dict(expr: AffineExpr, interner: _Interner) -> Dict[str, Any]:
    for iv, _ in expr.iv_terms:
        interner.ivars[iv.name] = iv
    for s, _ in expr.sym_terms:
        interner.syms[s.name] = s
    return {
        "const": expr.const,
        "ivs": [[iv.name, c] for iv, c in expr.iv_terms],
        "syms": [[s.name, c] for s, c in expr.sym_terms],
    }


def _addr_to_dict(addr: AddressExpr, interner: _Interner) -> Dict[str, Any]:
    if isinstance(addr.base, PointerParam):
        base = {"kind": "param", "uid": interner.intern_param(addr.base)}
    else:
        base = {"kind": "object", "uid": interner.intern_object(addr.base)}
    return {
        "base": base,
        "offset": _affine_to_dict(addr.offset, interner),
        "width": addr.width,
        "type_tag": addr.type_tag,
    }


def graph_to_dict(graph: DFGraph) -> Dict[str, Any]:
    """Serialize *graph* (ops, addresses, MDEs, symbol tables)."""
    interner = _Interner()
    ops: List[Dict[str, Any]] = []
    for op in graph.ops:
        entry: Dict[str, Any] = {
            "id": op.op_id,
            "opcode": op.opcode.value,
            "inputs": list(op.inputs),
            "name": op.name,
        }
        if op.addr is not None:
            entry["addr"] = _addr_to_dict(op.addr, interner)
        ops.append(entry)

    return {
        "name": graph.name,
        "ops": ops,
        "mdes": [
            {"src": e.src, "dst": e.dst, "kind": e.kind.value} for e in graph.mdes
        ],
        "objects": [
            {
                "uid": uid,
                "name": o.name,
                "size": o.size,
                "space": o.space.value,
                "element_size": o.element_size,
                "base_addr": o.base_addr,
            }
            for uid, o in sorted(interner.objects.items())
        ],
        "params": [
            {
                "uid": uid,
                "name": p.name,
                "runtime_object": p.runtime_object.uid,
                "provenance": p.provenance.uid if p.provenance else None,
            }
            for uid, p in sorted(interner.params.items())
        ],
        "ivars": [
            {"name": iv.name, "trip_count": iv.trip_count}
            for iv in sorted(interner.ivars.values(), key=lambda v: v.name)
        ],
        "syms": [
            {"name": s.name, "lo": s.lo, "hi": s.hi}
            for s in sorted(interner.syms.values(), key=lambda v: v.name)
        ],
    }


def graph_from_dict(payload: Dict[str, Any]) -> DFGraph:
    """Rebuild a region graph serialized by :func:`graph_to_dict`."""
    objects: Dict[int, MemObject] = {}
    for entry in payload.get("objects", []):
        objects[entry["uid"]] = MemObject(
            name=entry["name"],
            size=entry["size"],
            space=MemorySpace(entry["space"]),
            element_size=entry["element_size"],
            base_addr=entry["base_addr"],
        )
    params: Dict[int, PointerParam] = {}
    for entry in payload.get("params", []):
        prov = entry["provenance"]
        params[entry["uid"]] = PointerParam(
            name=entry["name"],
            runtime_object=objects[entry["runtime_object"]],
            provenance=objects[prov] if prov is not None else None,
        )
    ivars = {
        e["name"]: IVar(e["name"], e["trip_count"])
        for e in payload.get("ivars", [])
    }
    # The syms table (absent in payloads predating sym bounds) pins each
    # symbol's optional value range; per-expression references fall back
    # to an unbounded symbol of the same name.
    syms: Dict[str, Sym] = {
        e["name"]: Sym(e["name"], lo=e.get("lo"), hi=e.get("hi"))
        for e in payload.get("syms", [])
    }

    def affine(entry: Dict[str, Any]) -> AffineExpr:
        ivs = {ivars[name]: coeff for name, coeff in entry["ivs"]}
        sym_terms = {}
        for name, coeff in entry["syms"]:
            sym_terms[syms.setdefault(name, Sym(name))] = coeff
        return AffineExpr.of(const=entry["const"], ivs=ivs, syms=sym_terms)

    def address(entry: Dict[str, Any]) -> AddressExpr:
        base_entry = entry["base"]
        if base_entry["kind"] == "param":
            base = params[base_entry["uid"]]
        else:
            base = objects[base_entry["uid"]]
        return AddressExpr(
            base=base,
            offset=affine(entry["offset"]),
            width=entry["width"],
            type_tag=entry["type_tag"],
        )

    graph = DFGraph(payload["name"])
    for entry in payload["ops"]:
        graph.add_op(
            Operation(
                op_id=entry["id"],
                opcode=Opcode(entry["opcode"]),
                inputs=tuple(entry["inputs"]),
                addr=address(entry["addr"]) if "addr" in entry else None,
                name=entry.get("name", ""),
            )
        )
    for entry in payload.get("mdes", []):
        graph.add_mde(
            MemoryDependencyEdge(entry["src"], entry["dst"], MDEKind(entry["kind"]))
        )
    graph.validate()
    return graph


def dump_graph(graph: DFGraph, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(graph_to_dict(graph), fh, indent=1)


def load_graph(path: str) -> DFGraph:
    with open(path) as fh:
        return graph_from_dict(json.load(fh))
