"""Operations — the nodes of a region's dataflow graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.ir.address import AddressExpr
from repro.ir.opcodes import Opcode, is_memory, latency_of


@dataclass
class Operation:
    """A single dataflow operation.

    Attributes
    ----------
    op_id:
        Unique id within the region; also the operation's *program order*
        position (the compiler's 8-bit age in the LSQ baseline is derived
        from the rank among memory operations).
    opcode:
        What the functional unit computes.
    inputs:
        ``op_id`` s of the producers of this operation's data operands.
        For a LOAD the inputs produce the address; for a STORE they
        produce the address and the value.
    addr:
        Symbolic address — present exactly on LOAD/STORE.
    name:
        Optional human-readable label for reports and debugging.
    """

    op_id: int
    opcode: Opcode
    inputs: Tuple[int, ...] = ()
    addr: Optional[AddressExpr] = None
    name: str = ""

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        if is_memory(self.opcode) and self.addr is None:
            raise ValueError(f"memory op {self.op_id} requires an address expression")
        if not is_memory(self.opcode) and self.addr is not None:
            raise ValueError(f"non-memory op {self.op_id} must not carry an address")

    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_memory(self) -> bool:
        return is_memory(self.opcode)

    @property
    def latency(self) -> int:
        return latency_of(self.opcode)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.addr!r}" if self.addr is not None else ""
        label = f" '{self.name}'" if self.name else ""
        return f"Op#{self.op_id} {self.opcode.value}{tag}{label}"
