"""Opcodes for dataflow-region operations.

The CGRA in the paper maps one operation per functional unit (a 32x32 grid
of homogeneous units, Dyser-style).  We model the operation mix the paper's
regions exhibit: integer ALU ops, floating-point ops, address generation,
constants/region inputs, and the two memory operations.

Latencies follow the cycle model of the paper's framework (Figure 3 and the
Chainsaw simulator it builds on): single-cycle integer ops, multi-cycle
floating point, and memory latency determined by the cache hierarchy rather
than the opcode.
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Operation kinds supported in an acceleration region."""

    # Region plumbing.
    INPUT = "input"      # live-in value (from the host CPU / scratchpad)
    CONST = "const"      # compile-time constant

    # Integer compute.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SHIFT = "shift"
    AND = "and"
    OR = "or"
    XOR = "xor"
    CMP = "cmp"
    SELECT = "select"    # predicated select (superblocks are branch-free)

    # Floating point compute.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"

    # Address generation (LLVM getelementptr analogue).
    GEP = "gep"

    # Scratchpad accesses: local data the compiler promoted out of the
    # coherent memory space (needs no disambiguation, 1-cycle access).
    SPAD_LOAD = "spad_load"
    SPAD_STORE = "spad_store"

    # Memory.
    LOAD = "load"
    STORE = "store"


#: Cycles each opcode occupies its functional unit.  Memory operations
#: list only the issue latency; completion is determined by the memory
#: hierarchy and the disambiguation backend.
_LATENCY = {
    Opcode.INPUT: 0,
    Opcode.CONST: 0,
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 3,
    Opcode.SHIFT: 1,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.CMP: 1,
    Opcode.SELECT: 1,
    Opcode.FADD: 3,
    Opcode.FSUB: 3,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.GEP: 1,
    Opcode.SPAD_LOAD: 1,
    Opcode.SPAD_STORE: 1,
    Opcode.LOAD: 1,
    Opcode.STORE: 1,
}

_FP_OPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})
_MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE})
_PLUMBING_OPS = frozenset({Opcode.INPUT, Opcode.CONST})


def latency_of(opcode: Opcode) -> int:
    """Return the functional-unit occupancy (cycles) of *opcode*."""
    return _LATENCY[opcode]


def is_fp(opcode: Opcode) -> bool:
    """Return True for floating-point compute opcodes."""
    return opcode in _FP_OPS


def is_memory(opcode: Opcode) -> bool:
    """Return True for LOAD/STORE."""
    return opcode in _MEMORY_OPS


def is_compute(opcode: Opcode) -> bool:
    """Return True for opcodes that execute on an ALU (incl. GEP)."""
    return opcode not in _MEMORY_OPS and opcode not in _PLUMBING_OPS
