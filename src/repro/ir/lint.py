"""Structural linting for region graphs.

``lint_region`` flags suspicious-but-legal structure that usually means
a workload generator or hand-built region isn't what its author
intended: dead loads, value-less stores racing nothing, scratchpad-space
objects that were never promoted, unreachable compute, and oversized
access widths.  Lints are warnings — `DFGraph.validate()` handles hard
errors.
"""

from __future__ import annotations

from typing import List

from repro.ir.graph import DFGraph
from repro.ir.opcodes import Opcode


def lint_region(graph: DFGraph) -> List[str]:
    """Return human-readable warnings about *graph* (empty = clean)."""
    warnings: List[str] = []
    users = {op.op_id: graph.users_of(op.op_id) for op in graph.ops}

    for op in graph.ops:
        # Dead loads: a load whose value nobody consumes is either dead
        # code or a missing data edge.
        if op.is_load and not users[op.op_id]:
            warnings.append(
                f"op {op.op_id}: load result is never consumed (dead load?)"
            )
        # Accesses wider than the addressed object.
        if op.is_memory:
            base = op.addr.runtime_base
            if op.addr.width > base.size:
                warnings.append(
                    f"op {op.op_id}: access width {op.addr.width} exceeds "
                    f"object '{base.name}' size {base.size}"
                )
            if base.is_local:
                warnings.append(
                    f"op {op.op_id}: accesses local object '{base.name}' — "
                    "run scratchpad promotion before disambiguation"
                )
            # Static out-of-bounds check over the iteration domain.
            offset = op.addr.offset
            if not offset.has_syms:
                lo, hi = offset.bounds()
                if lo < 0 or hi + op.addr.width > base.size:
                    warnings.append(
                        f"op {op.op_id}: offset range [{lo}, {hi}] may fall "
                        f"outside object '{base.name}' (size {base.size})"
                    )
        # Dangling compute: produces a value nobody reads (stores and
        # region outputs excepted — the last op is the region result).
        if (
            not op.is_memory
            and op.opcode not in (Opcode.INPUT, Opcode.CONST, Opcode.SPAD_STORE)
            and not users[op.op_id]
            and op.op_id != graph.ops[-1].op_id
        ):
            warnings.append(
                f"op {op.op_id}: {op.opcode.value} result is never consumed"
            )

    inputs_unused = [
        op.op_id
        for op in graph.ops
        if op.opcode is Opcode.INPUT and not users[op.op_id]
    ]
    for op_id in inputs_unused:
        warnings.append(f"op {op_id}: live-in value is never used")

    return warnings
