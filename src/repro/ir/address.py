"""Symbolic address expressions for memory operations.

The NACHOS compiler reasons about whether two memory operations can touch
the same location.  We represent every address the way LLVM's scalar
evolution would canonicalize it::

    address = base + sum(coeff_k * ivar_k) + sum(coeff_m * sym_m) + const

where

* ``base`` is either a known allocation (:class:`MemObject`) or an opaque
  pointer that entered the region as an argument (:class:`PointerParam`),
* ``ivar_k`` are loop induction variables with known trip counts (the
  region is a superblock of an unrolled loop, so induction variables are
  fixed within one invocation and advance between invocations),
* ``sym_m`` are opaque runtime values (e.g. an index loaded from memory,
  as in ``hist[bucket[i]]``) that no static analysis can resolve.

The precision ladder of the four NACHOS-SW stages maps onto this
representation directly:

* **Stage 1** (LLVM basic/TBAA/SCEV) resolves distinct bases and
  single-induction-variable affine expressions.
* **Stage 2** (inter-procedural) resolves :class:`PointerParam` bases whose
  ``provenance`` can be traced to a source object in the caller.
* **Stage 4** (polyhedral) resolves multi-induction-variable affine
  expressions over the bounded iteration domain.

Expressions containing :class:`Sym` terms stay MAY forever — those are the
pairs only the NACHOS hardware comparator can disambiguate.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union


class MemorySpace(enum.Enum):
    """Address-space classification used by scratchpad promotion."""

    HEAP = "heap"
    GLOBAL = "global"
    STACK = "stack"
    SCRATCHPAD = "scratchpad"


_object_ids = itertools.count()


@dataclass(frozen=True)
class MemObject:
    """A named allocation (array, global, or stack slot).

    ``base_addr`` gives the object a concrete position in the simulated
    address space so trace generators and the correctness oracle can turn
    symbolic addresses into byte addresses.
    """

    name: str
    size: int
    space: MemorySpace = MemorySpace.HEAP
    element_size: int = 8
    base_addr: int = 0
    uid: int = field(default_factory=lambda: next(_object_ids))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"object {self.name!r} must have positive size")
        if self.element_size <= 0:
            raise ValueError(f"object {self.name!r} element_size must be positive")

    @property
    def is_local(self) -> bool:
        """True when the object can be promoted to a scratchpad."""
        return self.space in (MemorySpace.STACK, MemorySpace.SCRATCHPAD)

    def contains(self, addr: int) -> bool:
        """Return True if byte ``addr`` falls inside this object."""
        return self.base_addr <= addr < self.base_addr + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemObject({self.name}@{self.base_addr:#x}+{self.size})"


@dataclass(frozen=True)
class PointerParam:
    """A pointer whose allocation site is outside the region.

    ``runtime_object`` is the ground-truth target, used only by trace
    generation and the correctness oracle — *never* by stage-1 analysis.
    ``provenance`` is what a tractable inter-procedural trace (stage 2) can
    prove; ``None`` means the provenance chain is lost (e.g. the pointer
    was stored to memory and reloaded) and the compiler stays uncertain.
    """

    name: str
    runtime_object: MemObject
    provenance: Optional[MemObject] = None
    uid: int = field(default_factory=lambda: next(_object_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        prov = self.provenance.name if self.provenance else "?"
        return f"PointerParam({self.name}->{self.runtime_object.name}, prov={prov})"


PointerBase = Union[MemObject, PointerParam]


@dataclass(frozen=True)
class IVar:
    """A loop induction variable with a known iteration domain.

    Within one region invocation the variable holds a single (unknown)
    value in ``range(0, trip_count)``; across invocations it sweeps the
    domain.  Alias analysis must therefore prove facts for *all* values in
    the domain.
    """

    name: str
    trip_count: int

    def __post_init__(self) -> None:
        if self.trip_count <= 0:
            raise ValueError(f"ivar {self.name!r} needs a positive trip count")

    @property
    def domain(self) -> range:
        return range(self.trip_count)


@dataclass(frozen=True)
class Sym:
    """An opaque runtime value no static analysis can resolve.

    ``lo``/``hi`` optionally record an inclusive value range the front-end
    *can* prove (e.g. an index produced by a bounded table lookup, or a
    value masked to a power of two).  Stages 1--4 never look at the
    bounds — symbolic offsets stay MAY there, exactly as in the paper —
    but the stage-5 separation-logic checker uses them to bound the
    footprint of an access and, when the joint domain is small enough,
    to decide overlap exactly.  Both bounds must be given together;
    an unbounded symbol has ``lo is None and hi is None``.
    """

    name: str
    lo: Optional[int] = None
    hi: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.lo is None) != (self.hi is None):
            raise ValueError(
                f"sym {self.name!r} needs both bounds or neither"
            )
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"sym {self.name!r} has empty range [{self.lo}, {self.hi}]")

    @property
    def bounded(self) -> bool:
        return self.lo is not None

    @property
    def domain(self) -> range:
        """Inclusive value range as a ``range``; requires :attr:`bounded`."""
        if self.lo is None or self.hi is None:
            raise ValueError(f"sym {self.name!r} is unbounded")
        return range(self.lo, self.hi + 1)


def _normalize(terms: Mapping) -> Tuple:
    """Drop zero coefficients and produce a canonical sorted tuple."""
    items = [(v, c) for v, c in terms.items() if c != 0]
    items.sort(key=lambda vc: vc[0].name)
    return tuple(items)


@dataclass(frozen=True)
class AffineExpr:
    """``sum(coeff*ivar) + sum(coeff*sym) + const`` over integers."""

    iv_terms: Tuple[Tuple[IVar, int], ...] = ()
    sym_terms: Tuple[Tuple[Sym, int], ...] = ()
    const: int = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: int) -> "AffineExpr":
        return cls(const=value)

    @classmethod
    def of(
        cls,
        const: int = 0,
        ivs: Optional[Mapping[IVar, int]] = None,
        syms: Optional[Mapping[Sym, int]] = None,
    ) -> "AffineExpr":
        return cls(
            iv_terms=_normalize(ivs or {}),
            sym_terms=_normalize(syms or {}),
            const=const,
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _combine(self, other: "AffineExpr", sign: int) -> "AffineExpr":
        ivs: Dict[IVar, int] = dict(self.iv_terms)
        for iv, c in other.iv_terms:
            ivs[iv] = ivs.get(iv, 0) + sign * c
        syms: Dict[Sym, int] = dict(self.sym_terms)
        for s, c in other.sym_terms:
            syms[s] = syms.get(s, 0) + sign * c
        return AffineExpr.of(self.const + sign * other.const, ivs, syms)

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        return self._combine(other, +1)

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        return self._combine(other, -1)

    def scaled(self, factor: int) -> "AffineExpr":
        return AffineExpr.of(
            self.const * factor,
            {iv: c * factor for iv, c in self.iv_terms},
            {s: c * factor for s, c in self.sym_terms},
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.iv_terms and not self.sym_terms

    @property
    def has_syms(self) -> bool:
        return bool(self.sym_terms)

    @property
    def ivars(self) -> Tuple[IVar, ...]:
        return tuple(iv for iv, _ in self.iv_terms)

    @property
    def is_single_iv(self) -> bool:
        """Affine in at most one induction variable and no symbols."""
        return not self.sym_terms and len(self.iv_terms) <= 1

    def bounds(self) -> Tuple[int, int]:
        """Inclusive (min, max) of the expression over the IV domains.

        Symbols are treated as unbounded; callers must check
        :attr:`has_syms` first.
        """
        if self.has_syms:
            raise ValueError("cannot bound an expression with opaque symbols")
        lo = hi = self.const
        for iv, c in self.iv_terms:
            span = c * (iv.trip_count - 1)
            if span >= 0:
                hi += span
            else:
                lo += span
        return lo, hi

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate with concrete values for every IV and symbol."""
        total = self.const
        for iv, c in self.iv_terms:
            total += c * env[iv.name]
        for s, c in self.sym_terms:
            total += c * env[s.name]
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c}*{iv.name}" for iv, c in self.iv_terms]
        parts += [f"{c}*{s.name}" for s, c in self.sym_terms]
        parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class AddressExpr:
    """The full symbolic address of a memory operation.

    ``width`` is the access footprint in bytes; two accesses overlap when
    their byte ranges intersect.  ``type_tag`` feeds the type-based alias
    check (LLVM TBAA analogue): accesses with different non-None tags are
    assumed disjoint.
    """

    base: PointerBase
    offset: AffineExpr
    width: int = 8
    type_tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("access width must be positive")

    # ------------------------------------------------------------------
    # Ground truth (used by trace generation / oracle, not by stage 1)
    # ------------------------------------------------------------------
    @property
    def runtime_base(self) -> MemObject:
        """The allocation actually referenced at runtime."""
        if isinstance(self.base, PointerParam):
            return self.base.runtime_object
        return self.base

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Concrete byte address for one invocation's variable bindings."""
        return self.runtime_base.base_addr + self.offset.evaluate(env)

    # ------------------------------------------------------------------
    # Static views (what the compiler stages may look at)
    # ------------------------------------------------------------------
    @property
    def static_base(self) -> Optional[MemObject]:
        """The base object *provable* without inter-procedural analysis."""
        if isinstance(self.base, MemObject):
            return self.base
        return None

    @property
    def interprocedural_base(self) -> Optional[MemObject]:
        """The base object provable with stage-2 provenance tracing."""
        if isinstance(self.base, MemObject):
            return self.base
        return self.base.provenance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.base.name
        return f"&{name}[{self.offset!r}]:{self.width}"
