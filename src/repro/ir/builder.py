"""A small fluent builder for constructing region dataflow graphs.

Workload generators, tests, and examples all build regions; doing so by
hand-allocating op ids is error prone.  :class:`RegionBuilder` allocates
ids in program order and returns :class:`~repro.ir.ops.Operation` handles
that can be wired together.

Example
-------
>>> from repro.ir import RegionBuilder, MemObject, AffineExpr, IVar
>>> b = RegionBuilder("demo")
>>> a = MemObject("a", 1024)
>>> i = IVar("i", 128)
>>> idx = b.input("i")
>>> addr = b.gep(idx)
>>> ld = b.load(a, AffineExpr.of(ivs={i: 8}), inputs=[addr])
>>> acc = b.add(ld, b.const(1))
>>> st = b.store(a, AffineExpr.of(const=8, ivs={i: 8}), value=acc, inputs=[addr])
>>> graph = b.build()
>>> len(graph)
6
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.ir.address import AddressExpr, AffineExpr, MemObject, PointerBase
from repro.ir.graph import DFGraph
from repro.ir.opcodes import Opcode
from repro.ir.ops import Operation

OpRef = Union[int, Operation]


def _op_id(ref: OpRef) -> int:
    return ref.op_id if isinstance(ref, Operation) else ref


class RegionBuilder:
    """Builds a :class:`DFGraph` with automatically assigned op ids."""

    def __init__(self, name: str = "region") -> None:
        self._graph = DFGraph(name)
        self._next_id = 0

    # ------------------------------------------------------------------
    def _emit(
        self,
        opcode: Opcode,
        inputs: Sequence[OpRef] = (),
        addr: Optional[AddressExpr] = None,
        name: str = "",
    ) -> Operation:
        op = Operation(
            op_id=self._next_id,
            opcode=opcode,
            inputs=tuple(_op_id(r) for r in inputs),
            addr=addr,
            name=name,
        )
        self._graph.add_op(op)
        self._next_id += 1
        return op

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def input(self, name: str = "") -> Operation:
        """A live-in value arriving from the host CPU or scratchpad."""
        return self._emit(Opcode.INPUT, name=name)

    def const(self, value: int = 0, name: str = "") -> Operation:
        return self._emit(Opcode.CONST, name=name or f"c{value}")

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def add(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.ADD, [a, b], name=name)

    def sub(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.SUB, [a, b], name=name)

    def mul(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.MUL, [a, b], name=name)

    def shift(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.SHIFT, [a, b], name=name)

    def cmp(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.CMP, [a, b], name=name)

    def select(self, p: OpRef, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.SELECT, [p, a, b], name=name)

    def fadd(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.FADD, [a, b], name=name)

    def fsub(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.FSUB, [a, b], name=name)

    def fmul(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.FMUL, [a, b], name=name)

    def fdiv(self, a: OpRef, b: OpRef, name: str = "") -> Operation:
        return self._emit(Opcode.FDIV, [a, b], name=name)

    def gep(self, *inputs: OpRef, name: str = "") -> Operation:
        """Address computation feeding a memory op."""
        return self._emit(Opcode.GEP, list(inputs), name=name)

    def unop(self, opcode: Opcode, a: OpRef, name: str = "") -> Operation:
        return self._emit(opcode, [a], name=name)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(
        self,
        base: PointerBase,
        offset: AffineExpr,
        width: int = 8,
        inputs: Sequence[OpRef] = (),
        type_tag: Optional[str] = None,
        name: str = "",
    ) -> Operation:
        addr = AddressExpr(base=base, offset=offset, width=width, type_tag=type_tag)
        return self._emit(Opcode.LOAD, inputs, addr=addr, name=name)

    def store(
        self,
        base: PointerBase,
        offset: AffineExpr,
        value: OpRef,
        width: int = 8,
        inputs: Sequence[OpRef] = (),
        type_tag: Optional[str] = None,
        name: str = "",
    ) -> Operation:
        addr = AddressExpr(base=base, offset=offset, width=width, type_tag=type_tag)
        all_inputs = list(inputs) + [value]
        return self._emit(Opcode.STORE, all_inputs, addr=addr, name=name)

    def load_addr(
        self, addr: AddressExpr, inputs: Sequence[OpRef] = (), name: str = ""
    ) -> Operation:
        return self._emit(Opcode.LOAD, inputs, addr=addr, name=name)

    def store_addr(
        self, addr: AddressExpr, value: OpRef, inputs: Sequence[OpRef] = (), name: str = ""
    ) -> Operation:
        return self._emit(Opcode.STORE, list(inputs) + [value], addr=addr, name=name)

    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> DFGraph:
        if validate:
            self._graph.validate()
        return self._graph
