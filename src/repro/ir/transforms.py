"""Region graph transforms.

Compiler-side cleanups that operate purely on the IR:

* :func:`eliminate_dead_code` — drop operations whose results can never
  matter: compute whose value reaches no store/output, and loads nobody
  consumes.  Stores, region outputs (the last op), and anything feeding
  them transitively are live.  Ids are re-numbered densely (program
  order preserved), and MDEs between surviving memory ops are kept.
* :func:`strip_names` — drop debug names (smaller serialized graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.ir.graph import DFGraph, MemoryDependencyEdge
from repro.ir.ops import Operation


@dataclass
class DCEResult:
    graph: DFGraph
    removed: int
    id_map: Dict[int, int]  # old id -> new id (live ops only)


def _live_set(graph: DFGraph) -> Set[int]:
    """Ops whose effects are observable: stores, the region result, and
    everything they transitively consume."""
    live: Set[int] = set()
    roots: List[int] = [op.op_id for op in graph.ops if op.is_store]
    if graph.ops:
        roots.append(graph.ops[-1].op_id)  # the region's result value
    stack = list(roots)
    while stack:
        oid = stack.pop()
        if oid in live:
            continue
        live.add(oid)
        stack.extend(graph.op(oid).inputs)
    return live


def eliminate_dead_code(graph: DFGraph) -> DCEResult:
    """Return a compacted copy of *graph* without dead operations."""
    live = _live_set(graph)
    id_map: Dict[int, int] = {}
    out = DFGraph(graph.name)
    for op in graph.ops:
        if op.op_id not in live:
            continue
        new_id = len(id_map)
        id_map[op.op_id] = new_id
        out.add_op(
            Operation(
                op_id=new_id,
                opcode=op.opcode,
                inputs=tuple(id_map[i] for i in op.inputs),
                addr=op.addr,
                name=op.name,
            )
        )
    for edge in graph.mdes:
        if edge.src in id_map and edge.dst in id_map:
            out.add_mde(
                MemoryDependencyEdge(
                    id_map[edge.src], id_map[edge.dst], edge.kind
                )
            )
    out.validate()
    return DCEResult(graph=out, removed=len(graph) - len(out), id_map=id_map)


def strip_names(graph: DFGraph) -> DFGraph:
    """A copy of *graph* with all debug names removed."""
    out = DFGraph(graph.name)
    for op in graph.ops:
        out.add_op(
            Operation(
                op_id=op.op_id,
                opcode=op.opcode,
                inputs=op.inputs,
                addr=op.addr,
                name="",
            )
        )
    for edge in graph.mdes:
        out.add_mde(edge)
    return out
