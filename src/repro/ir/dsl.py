"""A tiny textual kernel DSL that parses into region graphs.

Writing regions through :class:`~repro.ir.builder.RegionBuilder` is
precise but verbose; the DSL makes examples, docs, and quick experiments
readable.  One statement per line; ``#`` starts a comment.

Declarations::

    arr  a 65536            # named array (heap), size in bytes
    arr  s 4096 stack       # stack space (promotable)
    ptr  p -> a             # opaque pointer; provenance traceable to a
    ptr  q -> a ?           # opaque pointer; provenance LOST (stage-2
                            # cannot see it; runtime target is still a)
    ivar i 512              # induction variable with trip count
    sym  k                  # opaque runtime value
    in   x                  # live-in value

Operations (each defines a new value name)::

    t1 = ld a[8*i + 16]     # load (width 8 by default)
    t2 = ld q[8*k] w4       # width-4 load through a pointer
    t3 = add t1 t2          # add/sub/mul/fadd/fsub/fmul/fdiv/cmp
    st a[8*i] = t3          # store
    st a[8*i] = t3 w4       # width-4 store

Addresses are ``base[affine]`` where the affine expression is a ``+``-
separated sum of ``coeff*var`` terms and integer constants (``var`` may
be an ivar or a sym).

Example::

    region = parse_region('''
        arr a 4096
        ivar i 64
        in x
        t = ld a[8*i]
        u = add t x
        st a[8*i] = u
    ''')
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.address import (
    AffineExpr,
    IVar,
    MemObject,
    MemorySpace,
    PointerParam,
    Sym,
)
from repro.ir.builder import RegionBuilder
from repro.ir.graph import DFGraph

_COMPUTE = {
    "add": "add", "sub": "sub", "mul": "mul", "shift": "shift",
    "cmp": "cmp", "fadd": "fadd", "fsub": "fsub", "fmul": "fmul",
    "fdiv": "fdiv",
}

_ADDR_RE = re.compile(r"^(\w+)\[(.*)\]$")


class DSLError(ValueError):
    """A parse or semantic error, with the offending line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


class _Parser:
    def __init__(self, name: str) -> None:
        self.builder = RegionBuilder(name)
        self.arrays: Dict[str, MemObject] = {}
        self.pointers: Dict[str, PointerParam] = {}
        self.ivars: Dict[str, IVar] = {}
        self.syms: Dict[str, Sym] = {}
        self.values: Dict[str, object] = {}
        self._next_base = 0x100000

    # ------------------------------------------------------------------
    def base_of(self, name: str, lineno: int):
        if name in self.arrays:
            return self.arrays[name]
        if name in self.pointers:
            return self.pointers[name]
        raise DSLError(lineno, f"unknown array/pointer {name!r}")

    def value_of(self, name: str, lineno: int):
        try:
            return self.values[name]
        except KeyError:
            raise DSLError(lineno, f"unknown value {name!r}") from None

    def parse_affine(self, text: str, lineno: int) -> AffineExpr:
        const = 0
        ivs: Dict[IVar, int] = {}
        syms: Dict[Sym, int] = {}
        for raw in text.split("+"):
            term = raw.strip()
            if not term:
                raise DSLError(lineno, "empty term in address expression")
            if "*" in term:
                coeff_s, var = (p.strip() for p in term.split("*", 1))
                try:
                    coeff = int(coeff_s)
                except ValueError:
                    raise DSLError(lineno, f"bad coefficient {coeff_s!r}") from None
            else:
                try:
                    const += int(term)
                    continue
                except ValueError:
                    coeff, var = 1, term
            if var in self.ivars:
                iv = self.ivars[var]
                ivs[iv] = ivs.get(iv, 0) + coeff
            elif var in self.syms:
                s = self.syms[var]
                syms[s] = syms.get(s, 0) + coeff
            else:
                raise DSLError(lineno, f"unknown variable {var!r} in address")
        return AffineExpr.of(const=const, ivs=ivs, syms=syms)

    def parse_address(self, text: str, lineno: int):
        m = _ADDR_RE.match(text.strip())
        if not m:
            raise DSLError(lineno, f"expected base[expr], got {text!r}")
        base = self.base_of(m.group(1), lineno)
        offset = self.parse_affine(m.group(2), lineno)
        return base, offset

    @staticmethod
    def parse_width(tokens: List[str], lineno: int) -> Tuple[List[str], int]:
        if tokens and re.fullmatch(r"w\d+", tokens[-1]):
            return tokens[:-1], int(tokens[-1][1:])
        return tokens, 8

    # ------------------------------------------------------------------
    def statement(self, line: str, lineno: int) -> None:
        tokens = line.split()
        head = tokens[0]

        if head == "arr":
            if len(tokens) not in (3, 4):
                raise DSLError(lineno, "usage: arr NAME SIZE [stack|global]")
            space = MemorySpace.HEAP
            if len(tokens) == 4:
                try:
                    space = MemorySpace(tokens[3])
                except ValueError:
                    raise DSLError(lineno, f"unknown space {tokens[3]!r}") from None
            size = int(tokens[2])
            self.arrays[tokens[1]] = MemObject(
                tokens[1], size, space, base_addr=self._next_base
            )
            self._next_base += (size + 0xFFF) & ~0xFFF
            return

        if head == "ptr":
            # ptr NAME -> TARGET [?]
            if len(tokens) not in (4, 5) or tokens[2] != "->":
                raise DSLError(lineno, "usage: ptr NAME -> ARRAY [?]")
            target_name = tokens[3]
            if target_name not in self.arrays:
                raise DSLError(lineno, f"unknown target array {target_name!r}")
            target = self.arrays[target_name]
            opaque = len(tokens) == 5 and tokens[4] == "?"
            self.pointers[tokens[1]] = PointerParam(
                tokens[1],
                runtime_object=target,
                provenance=None if opaque else target,
            )
            return

        if head == "ivar":
            if len(tokens) != 3:
                raise DSLError(lineno, "usage: ivar NAME TRIP_COUNT")
            self.ivars[tokens[1]] = IVar(tokens[1], int(tokens[2]))
            return

        if head == "sym":
            if len(tokens) != 2:
                raise DSLError(lineno, "usage: sym NAME")
            self.syms[tokens[1]] = Sym(tokens[1])
            return

        if head == "in":
            if len(tokens) != 2:
                raise DSLError(lineno, "usage: in NAME")
            if tokens[1] in self.values:
                raise DSLError(lineno, f"value {tokens[1]!r} redefined")
            self.values[tokens[1]] = self.builder.input(tokens[1])
            return

        if head == "st":
            # st base[expr] = VALUE [wN]   (the address may contain spaces)
            m = re.match(r"^st\s+(.+\])\s*=\s*(\w+)(?:\s+w(\d+))?$", line)
            if not m:
                raise DSLError(lineno, "usage: st base[expr] = VALUE [wN]")
            base, offset = self.parse_address(m.group(1), lineno)
            value = self.value_of(m.group(2), lineno)
            width = int(m.group(3)) if m.group(3) else 8
            self.builder.store(base, offset, value=value, width=width)
            return

        # VALUE-defining statements: NAME = op ...
        if len(tokens) >= 3 and tokens[1] == "=":
            name = tokens[0]
            if name in self.values:
                raise DSLError(lineno, f"value {name!r} redefined")
            op = tokens[2]
            if op == "ld":
                m = re.match(
                    r"^\w+\s*=\s*ld\s+(.+\])(?:\s+w(\d+))?$", line
                )
                if not m:
                    raise DSLError(lineno, "usage: NAME = ld base[expr] [wN]")
                base, offset = self.parse_address(m.group(1), lineno)
                width = int(m.group(2)) if m.group(2) else 8
                self.values[name] = self.builder.load(base, offset, width=width)
                return
            if op in _COMPUTE:
                if len(tokens) != 5:
                    raise DSLError(lineno, f"usage: NAME = {op} A B")
                a = self.value_of(tokens[3], lineno)
                bval = self.value_of(tokens[4], lineno)
                self.values[name] = getattr(self.builder, _COMPUTE[op])(a, bval)
                return
            raise DSLError(lineno, f"unknown operation {op!r}")

        raise DSLError(lineno, f"cannot parse statement {line!r}")


def parse_region(text: str, name: str = "dsl-region") -> DFGraph:
    """Parse the kernel DSL into a validated region graph."""
    parser = _Parser(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parser.statement(line, lineno)
    return parser.builder.build()
