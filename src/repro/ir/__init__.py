"""Dataflow-graph intermediate representation for acceleration regions.

An acceleration region (the unit NACHOS operates on) is a branch-free
directed acyclic dataflow graph extracted from a hot program path, as
produced by a NEEDLE-style path extractor.  The IR captures:

* operations (:class:`~repro.ir.ops.Operation`) with opcodes, data inputs,
  and — for memory operations — a symbolic :class:`~repro.ir.address.AddressExpr`,
* plain data-dependency edges (implied by operation inputs),
* memory dependency edges (:class:`~repro.ir.graph.MemoryDependencyEdge`)
  inserted by the NACHOS compiler passes.

The IR is deliberately independent of both the compiler analyses
(:mod:`repro.compiler`) and the cycle simulator (:mod:`repro.sim`); those
layers consume it.
"""

from repro.ir.address import (
    AddressExpr,
    AffineExpr,
    IVar,
    MemObject,
    MemorySpace,
    PointerParam,
    Sym,
)
from repro.ir.graph import DFGraph, MDEKind, MemoryDependencyEdge
from repro.ir.builder import RegionBuilder
from repro.ir.opcodes import Opcode, is_compute, is_fp, is_memory, latency_of
from repro.ir.ops import Operation
from repro.ir.serialize import dump_graph, graph_from_dict, graph_to_dict, load_graph
from repro.ir.lint import lint_region
from repro.ir.dot import dump_dot, graph_to_dot
from repro.ir.transforms import eliminate_dead_code, strip_names
from repro.ir.dsl import DSLError, parse_region

__all__ = [
    "AddressExpr",
    "AffineExpr",
    "DFGraph",
    "IVar",
    "MDEKind",
    "MemObject",
    "MemorySpace",
    "DSLError",
    "MemoryDependencyEdge",
    "Opcode",
    "parse_region",
    "Operation",
    "PointerParam",
    "RegionBuilder",
    "Sym",
    "dump_dot",
    "dump_graph",
    "eliminate_dead_code",
    "strip_names",
    "graph_from_dict",
    "graph_to_dict",
    "graph_to_dot",
    "lint_region",
    "is_compute",
    "is_fp",
    "is_memory",
    "latency_of",
    "load_graph",
]
