"""The region dataflow graph and memory dependency edges (MDEs).

A :class:`DFGraph` holds the operations of one acceleration region in
program order plus two edge families:

* *data edges*, implied by each operation's ``inputs``;
* *memory dependency edges* (:class:`MemoryDependencyEdge`), inserted by
  the NACHOS compiler between pairs of memory operations.

MDE kinds follow the paper (Section V):

* ``ORDER``  — 1-bit ready signal between MUST-aliasing LD→ST / ST→ST
  pairs; the younger op waits for the older op's completion.
* ``FORWARD`` — 64-bit value edge between a MUST-aliasing ST→LD pair;
  the memory dependency becomes a data dependency.
* ``MAY``    — compiler-uncertain pair.  NACHOS-SW enforces it like
  ``ORDER``; NACHOS resolves it at runtime with the ``==?`` comparator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.ir.ops import Operation


class MDEKind(enum.Enum):
    ORDER = "order"
    FORWARD = "forward"
    MAY = "may"


@dataclass(frozen=True)
class MemoryDependencyEdge:
    """A compiler-inserted ordering between two memory operations.

    ``src`` is always the *older* (smaller ``op_id``) memory operation and
    ``dst`` the younger one.
    """

    src: int
    dst: int
    kind: MDEKind

    def __post_init__(self) -> None:
        if self.src >= self.dst:
            raise ValueError(
                f"MDE must point from older to younger op ({self.src} -> {self.dst})"
            )


class GraphError(ValueError):
    """Raised when a region graph is structurally invalid."""


class DFGraph:
    """A branch-free acceleration-region dataflow graph."""

    def __init__(self, name: str = "region") -> None:
        self.name = name
        self._ops: Dict[int, Operation] = {}
        self._mdes: List[MemoryDependencyEdge] = []
        self._users: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_op(self, op: Operation) -> Operation:
        if op.op_id in self._ops:
            raise GraphError(f"duplicate op id {op.op_id}")
        for src in op.inputs:
            if src not in self._ops:
                raise GraphError(
                    f"op {op.op_id} consumes undefined op {src}; add producers first"
                )
            if src >= op.op_id:
                raise GraphError(
                    f"op {op.op_id} consumes a younger/equal op {src}; "
                    "regions are in topological program order"
                )
        self._ops[op.op_id] = op
        self._users.setdefault(op.op_id, [])
        for src in op.inputs:
            self._users[src].append(op.op_id)
        return op

    def add_mde(self, edge: MemoryDependencyEdge) -> None:
        for end in (edge.src, edge.dst):
            if end not in self._ops:
                raise GraphError(f"MDE endpoint {end} is not an op in the region")
            if not self._ops[end].is_memory:
                raise GraphError(f"MDE endpoint {end} is not a memory operation")
        self._mdes.append(edge)

    def clear_mdes(self) -> None:
        self._mdes.clear()

    def replace_mdes(self, edges: Iterable[MemoryDependencyEdge]) -> None:
        self._mdes = list(edges)

    def clone(self, with_mdes: bool = True) -> "DFGraph":
        """A structurally independent copy of this graph.

        Operations are immutable after construction, so they are shared;
        the op table, MDE list, and user lists are fresh containers.  A
        clone can therefore be re-annotated (``replace_mdes`` /
        ``clear_mdes``) without touching the original — this is what lets
        :func:`repro.experiments.common.run_system` compile per system
        while keeping the workload's graph pristine.
        """
        g = DFGraph.__new__(DFGraph)
        g.name = self.name
        g._ops = dict(self._ops)
        g._mdes = list(self._mdes) if with_mdes else []
        g._users = {k: list(v) for k, v in self._users.items()}
        return g

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def op(self, op_id: int) -> Operation:
        return self._ops[op_id]

    @property
    def ops(self) -> List[Operation]:
        """Operations in program order."""
        return [self._ops[k] for k in sorted(self._ops)]

    @property
    def mdes(self) -> List[MemoryDependencyEdge]:
        return list(self._mdes)

    def users_of(self, op_id: int) -> List[int]:
        """Ops that consume ``op_id``'s value (data edges only)."""
        return list(self._users.get(op_id, []))

    @property
    def memory_ops(self) -> List[Operation]:
        """LOAD/STORE operations in program order."""
        return [op for op in self.ops if op.is_memory]

    @property
    def loads(self) -> List[Operation]:
        return [op for op in self.ops if op.is_load]

    @property
    def stores(self) -> List[Operation]:
        return [op for op in self.ops if op.is_store]

    def memory_rank(self) -> Dict[int, int]:
        """Map op_id -> rank among memory ops (the compiler LSQ age)."""
        return {op.op_id: i for i, op in enumerate(self.memory_ops)}

    def mdes_into(self, op_id: int) -> List[MemoryDependencyEdge]:
        return [e for e in self._mdes if e.dst == op_id]

    def mdes_out_of(self, op_id: int) -> List[MemoryDependencyEdge]:
        return [e for e in self._mdes if e.src == op_id]

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` if broken.

        Program-order ids, producer-before-consumer, MDE endpoints being
        memory operations, and MDE direction are enforced at construction;
        this re-checks them plus memory-op address presence.
        """
        for op in self.ops:
            for src in op.inputs:
                if src not in self._ops:
                    raise GraphError(f"dangling input {src} on op {op.op_id}")
            if op.is_memory and op.addr is None:
                raise GraphError(f"memory op {op.op_id} lost its address")
        seen: Set[Tuple[int, int, MDEKind]] = set()
        for edge in self._mdes:
            key = (edge.src, edge.dst, edge.kind)
            if key in seen:
                raise GraphError(f"duplicate MDE {key}")
            seen.add(key)

    def data_reachability(self) -> Dict[int, Set[int]]:
        """For each op, the set of ops reachable via *data* edges.

        Stage 3 uses this to drop MDEs already subsumed by a transitive
        data dependence.  Regions are DAGs in program order, so a single
        forward sweep suffices.
        """
        reach: Dict[int, Set[int]] = {op_id: set() for op_id in self._ops}
        for op in reversed(self.ops):
            for user in self._users.get(op.op_id, []):
                reach[op.op_id].add(user)
                reach[op.op_id] |= reach[user]
        return reach

    def full_reachability(self) -> Dict[int, Set[int]]:
        """Reachability over data edges *and* current MDEs."""
        succ: Dict[int, Set[int]] = {op_id: set() for op_id in self._ops}
        for op in self.ops:
            for src in op.inputs:
                succ[src].add(op.op_id)
        for edge in self._mdes:
            succ[edge.src].add(edge.dst)
        reach: Dict[int, Set[int]] = {op_id: set() for op_id in self._ops}
        for op in reversed(self.ops):
            for nxt in succ[op.op_id]:
                reach[op.op_id].add(nxt)
                reach[op.op_id] |= reach[nxt]
        return reach

    def critical_path_length(self) -> int:
        """Longest latency-weighted path over data edges and MDEs."""
        dist: Dict[int, int] = {}
        succ: Dict[int, List[int]] = {op_id: [] for op_id in self._ops}
        for op in self.ops:
            for src in op.inputs:
                succ[src].append(op.op_id)
        for edge in self._mdes:
            succ[edge.src].append(edge.dst)
        best = 0
        for op in reversed(self.ops):
            tail = max((dist[n] for n in succ[op.op_id]), default=0)
            dist[op.op_id] = op.latency + tail
            best = max(best, dist[op.op_id])
        return best

    # ------------------------------------------------------------------
    # Statistics (Table II columns)
    # ------------------------------------------------------------------
    def stats(self) -> "RegionStats":
        n_mem = len(self.memory_ops)
        return RegionStats(
            name=self.name,
            n_ops=len(self),
            n_mem=n_mem,
            n_loads=len(self.loads),
            n_stores=len(self.stores),
            n_mdes=len(self._mdes),
        )


@dataclass(frozen=True)
class RegionStats:
    """Static characteristics of a region (Table II raw material)."""

    name: str
    n_ops: int
    n_mem: int
    n_loads: int
    n_stores: int
    n_mdes: int

    @property
    def mem_fraction(self) -> float:
        return self.n_mem / self.n_ops if self.n_ops else 0.0
