"""The appendix's analytic limit model for decentralized checking.

With ``N`` memory operations and per-check energies ``E_lsq`` (one 1-to-N
CAM search) and ``E_may`` (one pairwise ==? comparison)::

    TOT_lsq    = N * E_lsq
    TOT_nachos ~= Pairs_may * E_may      (NO pairs are free; MUST pairs
                                          are single-bit and rare)

so decentralized checking wins whenever the average number of MAY aliases
per memory operation, ``Pairs_may / N``, is below ``E_lsq / E_may`` (6 with
the paper's conservative 3000 fJ vs 500 fJ costs).  The paper finds the
ratio above 1 in only seven benchmarks and below 6 in all of them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DecentralizedCheckModel:
    """Energy comparison of pairwise checks vs a centralized LSQ."""

    e_lsq: float = 3000.0   # fJ per 1-to-N optimized-LSQ check
    e_may: float = 500.0    # fJ per pairwise ==? comparison
    e_must: float = 250.0   # fJ per 1-bit ORDER edge

    @property
    def breakeven_ratio(self) -> float:
        """MAY aliases per memory op above which the LSQ is cheaper."""
        return self.e_lsq / self.e_may

    def lsq_energy(self, n_mem_ops: int) -> float:
        return n_mem_ops * self.e_lsq

    def nachos_energy(self, pairs_may: int, pairs_must: int = 0) -> float:
        return pairs_may * self.e_may + pairs_must * self.e_must

    def nachos_vs_lsq(self, n_mem_ops: int, pairs_may: int, pairs_must: int = 0) -> float:
        """``TOT_nachos / TOT_lsq`` (< 1 means NACHOS is cheaper)."""
        lsq = self.lsq_energy(n_mem_ops)
        if lsq == 0:
            return 0.0
        return self.nachos_energy(pairs_may, pairs_must) / lsq

    def profitable(self, n_mem_ops: int, pairs_may: int) -> bool:
        """True when decentralized checking saves energy."""
        if n_mem_ops == 0:
            return True
        return pairs_may / n_mem_ops < self.breakeven_ratio
