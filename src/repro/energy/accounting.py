"""The energy ledger: counts events, prices them, groups them for plots."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.energy.config import EnergyConfig, EnergyEvent

#: Plot categories used by Figures 17 and 18.
COMPUTE = "COMPUTE"
MDE = "MDE"
LSQ_BLOOM = "LSQ-BLOOM"
LSQ_CAM = "LSQ-CAM"
L1 = "L1"

_CATEGORY_OF = {
    EnergyEvent.ALU_INT: COMPUTE,
    EnergyEvent.ALU_FP: COMPUTE,
    EnergyEvent.NET_LINK: COMPUTE,
    EnergyEvent.MDE_MAY_CHECK: MDE,
    EnergyEvent.MDE_MUST: MDE,
    EnergyEvent.MDE_FORWARD: MDE,
    EnergyEvent.LSQ_BLOOM: LSQ_BLOOM,
    EnergyEvent.LSQ_CAM_LOAD: LSQ_CAM,
    EnergyEvent.LSQ_CAM_STORE: LSQ_CAM,
    EnergyEvent.LSQ_FORWARD: LSQ_CAM,
    EnergyEvent.L1_READ: L1,
    EnergyEvent.L1_WRITE: L1,
}


@dataclass
class EnergyBreakdown:
    """Energy (fJ) per plot category."""

    by_category: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.by_category.values())

    def fraction(self, category: str) -> float:
        return self.by_category.get(category, 0.0) / self.total if self.total else 0.0

    @property
    def disambiguation(self) -> float:
        """Energy spent on memory ordering (MDE or LSQ machinery)."""
        return (
            self.by_category.get(MDE, 0.0)
            + self.by_category.get(LSQ_BLOOM, 0.0)
            + self.by_category.get(LSQ_CAM, 0.0)
        )

    @property
    def disambiguation_fraction(self) -> float:
        return self.disambiguation / self.total if self.total else 0.0


class EnergyLedger:
    """Accumulates event counts during a simulation."""

    def __init__(self, config: Optional[EnergyConfig] = None) -> None:
        self.config = config or EnergyConfig.paper_default()
        self.counts: Dict[EnergyEvent, int] = {e: 0 for e in EnergyEvent}

    def charge(self, event: EnergyEvent, count: int = 1) -> None:
        if count < 0:
            raise ValueError("cannot charge a negative event count")
        self.counts[event] += count

    # ------------------------------------------------------------------
    def energy_of(self, event: EnergyEvent) -> float:
        return self.counts[event] * self.config.cost_of(event)

    @property
    def total(self) -> float:
        return sum(self.energy_of(e) for e in EnergyEvent)

    def breakdown(self) -> EnergyBreakdown:
        cats: Dict[str, float] = {}
        for event in EnergyEvent:
            cat = _CATEGORY_OF[event]
            cats[cat] = cats.get(cat, 0.0) + self.energy_of(event)
        return EnergyBreakdown(by_category=cats)

    def merge(self, other: "EnergyLedger") -> None:
        for event, count in other.counts.items():
            self.counts[event] += count
