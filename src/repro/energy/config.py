"""Per-event energy costs.

Values from the paper's Figure 3 table where given:

* network link 600 fJ, ALU 500 fJ/INT and 1500 fJ/FP,
* MDE: MAY 500 fJ/edge, MUST 250 fJ/edge,
* LSQ (2-port, 48 entries/bank): loads 2500 fJ, stores 3500 fJ per CAM
  check.

The LSQ front-end and L1 access energies are not tabulated in the paper;
we use McPAT-scale values chosen so the baseline's aggregate shape
matches the reported breakdown (OPT-LSQ ~= 27% of accelerator + L1
energy).  ``LSQ_BLOOM`` covers the unavoidable per-access front-end work
of the optimized LSQ — entry allocation into the banked queue, age-tag
bookkeeping, and the bloom probe itself; a bloom hit additionally pays
the CAM search.  All values are configuration knobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class EnergyEvent(enum.Enum):
    ALU_INT = "alu_int"
    ALU_FP = "alu_fp"
    NET_LINK = "net_link"          # one operand traversing one mesh link
    MDE_MAY_CHECK = "mde_may"      # one ==? comparator check
    MDE_MUST = "mde_must"          # one ORDER-edge activation
    MDE_FORWARD = "mde_forward"    # one FORWARD-edge value hand-off
    LSQ_BLOOM = "lsq_bloom"        # bloom-filter probe (every LSQ access)
    LSQ_CAM_LOAD = "lsq_cam_load"  # load's CAM search after a bloom hit
    LSQ_CAM_STORE = "lsq_cam_store"
    LSQ_FORWARD = "lsq_forward"    # SQ data read for store->load forward
    L1_READ = "l1_read"
    L1_WRITE = "l1_write"


@dataclass(frozen=True)
class EnergyConfig:
    """fJ per event occurrence."""

    costs: Dict[EnergyEvent, float] = field(
        default_factory=lambda: {
            EnergyEvent.ALU_INT: 500.0,
            EnergyEvent.ALU_FP: 1500.0,
            EnergyEvent.NET_LINK: 600.0,
            EnergyEvent.MDE_MAY_CHECK: 500.0,
            EnergyEvent.MDE_MUST: 250.0,
            EnergyEvent.MDE_FORWARD: 250.0,
            EnergyEvent.LSQ_BLOOM: 2500.0,
            EnergyEvent.LSQ_CAM_LOAD: 2500.0,
            EnergyEvent.LSQ_CAM_STORE: 3500.0,
            EnergyEvent.LSQ_FORWARD: 1000.0,
            EnergyEvent.L1_READ: 5000.0,
            EnergyEvent.L1_WRITE: 6000.0,
        }
    )

    def cost_of(self, event: EnergyEvent) -> float:
        return self.costs[event]

    @classmethod
    def paper_default(cls) -> "EnergyConfig":
        return cls()
