"""Event-based energy accounting (Aladdin-style, paper Figure 3 costs)."""

from repro.energy.config import EnergyConfig, EnergyEvent
from repro.energy.accounting import EnergyBreakdown, EnergyLedger
from repro.energy.model import DecentralizedCheckModel

__all__ = [
    "DecentralizedCheckModel",
    "EnergyBreakdown",
    "EnergyConfig",
    "EnergyEvent",
    "EnergyLedger",
]
