"""Consistent-hash ring mapping task fingerprints to daemon peers.

The sharded cache tier (:mod:`repro.serve.peers`) needs every daemon in
a fleet to agree, without coordination, on which peer *owns* a given
``task_fingerprint`` — so a local miss knows exactly whose disk to ask
before computing.  A :class:`HashRing` gives that agreement the classic
way:

* each node is hashed onto the ring at ``vnodes`` pseudo-random points
  (virtual nodes smooth the per-node key share to within a few percent
  at the default 64);
* a key is owned by the first node point clockwise from the key's own
  hash;
* adding or removing one node remaps only the key fraction adjacent to
  that node's points (~``1/len(nodes)``), never reshuffling the rest —
  a rebooted fleet member reclaims exactly its old prefix.

Everything is sha256-based and therefore identical across processes,
machines, and ``PYTHONHASHSEED`` values: the same membership always
yields the same owner for the same fingerprint, which is what makes
ring routing usable as a *protocol* rather than a per-process heuristic
(``tests/test_hashring.py`` pins this cross-process).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Tuple

#: Virtual nodes per physical node.  64 keeps the worst/best key-share
#: ratio under ~1.5x for small fleets while staying cheap to rebuild.
DEFAULT_VNODES = 64


def _point(text: str) -> int:
    """A stable 64-bit ring coordinate for *text* (sha256-derived)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def key_point(key: str) -> int:
    """Where *key* (a task fingerprint) lands on the ring."""
    return _point("key\x1f" + key)


class HashRing:
    """Deterministic consistent-hash ring over named nodes.

    Nodes are opaque strings (the fleet uses stable peer names like
    ``shard0``, not addresses, so ephemeral ports never move keys).
    """

    def __init__(
        self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        # Sorted parallel arrays: ring coordinates and the node at each.
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------
    def add(self, node: str) -> bool:
        """Add *node*; returns False if it was already present."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _point(f"node\x1f{node}\x1f{i}")
            idx = bisect.bisect_left(self._points, point)
            # Same-point collisions (different nodes) break ties by
            # node-name order so every process agrees on the winner.
            while (
                idx < len(self._points)
                and self._points[idx] == point
                and self._owners[idx] < node
            ):
                idx += 1
            self._points.insert(idx, point)
            self._owners.insert(idx, node)
        return True

    def remove(self, node: str) -> bool:
        """Remove *node*; returns False if it was not present."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        return True

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- lookup ---------------------------------------------------------
    def owner(self, key: str) -> Optional[str]:
        """The node owning *key*, or None for an empty ring."""
        if not self._points:
            return None
        idx = bisect.bisect_right(self._points, key_point(key))
        if idx == len(self._points):
            idx = 0  # wrap: the first point clockwise past the top
        return self._owners[idx]

    def owners(self, key: str, n: int) -> Tuple[str, ...]:
        """The first *n* distinct nodes clockwise from *key* (preference
        order for replica placement; ``owners(key, 1)[0] == owner(key)``)."""
        if not self._points or n < 1:
            return ()
        start = bisect.bisect_right(self._points, key_point(key))
        picked: List[str] = []
        for step in range(len(self._points)):
            node = self._owners[(start + step) % len(self._points)]
            if node not in picked:
                picked.append(node)
                if len(picked) == n or len(picked) == len(self._nodes):
                    break
        return tuple(picked)
