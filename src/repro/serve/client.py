"""Stdlib HTTP client for ``nachos-serve`` (TCP or unix socket).

One connection per request (the daemon answers ``Connection: close``),
so a :class:`ServeClient` is cheap, stateless, and thread-safe — the
load generator drives one instance from many threads.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional


class ServeError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")


class _UnixHTTPConnection(http.client.HTTPConnection):
    """HTTP/1.1 over an ``AF_UNIX`` stream socket."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServeClient:
    """Talk to a running daemon: submit, poll, fetch, introspect."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8737,
        socket_path: Optional[str] = None,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, target: str, body: Optional[dict] = None,
        accept: tuple = (200,),
    ) -> Dict[str, Any]:
        conn = self._connection()
        try:
            data = json.dumps(body).encode("utf-8") if body is not None else None
            conn.request(
                method, target, body=data,
                headers={"Content-Type": "application/json"} if data else {},
            )
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        if response.status not in accept:
            raise ServeError(response.status, payload)
        payload["_http_status"] = response.status
        return payload

    # -- endpoints ------------------------------------------------------
    def submit(
        self,
        region: str,
        systems: Optional[List[str]] = None,
        invocations: Optional[int] = None,
        engine: Optional[str] = None,
        wait: bool = False,
        wait_timeout: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"region": region, **extra}
        if systems is not None:
            body["systems"] = systems
        if invocations is not None:
            body["invocations"] = invocations
        if engine is not None:
            body["engine"] = engine
        if wait:
            body["wait"] = True
            if wait_timeout is not None:
                body["wait_timeout"] = wait_timeout
        return self._request("POST", "/submit", body, accept=(200, 202))

    def poll(self, request_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/poll?id={request_id}")

    def result(self, request_id: str) -> Dict[str, Any]:
        """The payload (``status`` tells done/failed); 202 while running."""
        return self._request(
            "GET", f"/result?id={request_id}", accept=(200, 202)
        )

    def wait(
        self, request_id: str, timeout: float = 600.0, interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/result`` until the request completes."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            payload = self.result(request_id)
            if payload["_http_status"] == 200:
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"request {request_id} still running after {timeout}s"
                )
            time.sleep(interval)

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")
