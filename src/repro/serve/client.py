"""Stdlib HTTP client for ``nachos-serve`` (TCP or unix socket).

One connection per request (the daemon answers ``Connection: close``),
so a :class:`ServeClient` is cheap, stateless, and thread-safe — the
load generator drives one instance from many threads.

Hardening knobs (all off/strict by default):

* ``retries`` — connection-refused attempts are retried with the same
  deterministic seeded backoff the runtime uses
  (:class:`repro.runtime.retry.RetryPolicy`), which papers over a
  daemon restart without masking a genuinely dead fleet;
* response bodies are capped at ``MAX_RESPONSE_BYTES`` and a
  truncated or non-JSON body surfaces as a :class:`ServeError`
  (carrying a preview) instead of a bare ``json`` traceback.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Optional

from repro.runtime.retry import RetryPolicy

#: Ceiling on a response body; the daemon's payloads are small JSON, so
#: anything larger is a protocol violation, not data.
MAX_RESPONSE_BYTES = 1 << 26


class ServeError(RuntimeError):
    """A non-2xx response (or an unusable body) from the daemon."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")


class _UnixHTTPConnection(http.client.HTTPConnection):
    """HTTP/1.1 over an ``AF_UNIX`` stream socket."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServeClient:
    """Talk to a running daemon: submit, poll, fetch, introspect."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8737,
        socket_path: Optional[str] = None,
        timeout: float = 600.0,
        retries: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(backoff_base=0.05, backoff_max=1.0)
        )

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, target: str, body: Optional[dict] = None,
        accept: tuple = (200,), headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, target, body, accept, headers)
            except ConnectionRefusedError:
                # The one transient worth absorbing: a daemon mid-restart
                # refuses connects for a moment, then listens again.
                if attempt >= self.retries:
                    raise
                time.sleep(
                    self.retry_policy.backoff(f"connect-{target}", attempt)
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self, method: str, target: str, body: Optional[dict],
        accept: tuple, headers: Optional[Dict[str, str]],
    ) -> Dict[str, Any]:
        conn = self._connection()
        try:
            data = json.dumps(body).encode("utf-8") if body is not None else None
            send_headers = dict(headers or {})
            if data is not None:
                send_headers.setdefault("Content-Type", "application/json")
            conn.request(method, target, body=data, headers=send_headers)
            response = conn.getresponse()
            declared = response.getheader("Content-Length")
            if declared is not None and declared.isdigit() and (
                int(declared) > MAX_RESPONSE_BYTES
            ):
                raise ServeError(
                    response.status,
                    {"error": f"response body too large ({declared} bytes)"},
                )
            try:
                raw = response.read(MAX_RESPONSE_BYTES + 1)
            except http.client.IncompleteRead as exc:
                raw = exc.partial
                raise ServeError(
                    response.status,
                    {
                        "error": "truncated response body",
                        "preview": repr(raw[:120]),
                    },
                ) from None
            if len(raw) > MAX_RESPONSE_BYTES:
                raise ServeError(
                    response.status, {"error": "response body too large"}
                )
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise ServeError(
                    response.status,
                    {
                        "error": "response body is not valid JSON",
                        "preview": repr(raw[:120]),
                    },
                ) from None
            if not isinstance(payload, dict):
                raise ServeError(
                    response.status, {"error": "response is not a JSON object"}
                )
        finally:
            conn.close()
        if response.status not in accept:
            raise ServeError(response.status, payload)
        payload["_http_status"] = response.status
        return payload

    # -- endpoints ------------------------------------------------------
    def submit(
        self,
        region: str,
        systems: Optional[List[str]] = None,
        invocations: Optional[int] = None,
        engine: Optional[str] = None,
        wait: bool = False,
        wait_timeout: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"region": region, **extra}
        if systems is not None:
            body["systems"] = systems
        if invocations is not None:
            body["invocations"] = invocations
        if engine is not None:
            body["engine"] = engine
        if wait:
            body["wait"] = True
            if wait_timeout is not None:
                body["wait_timeout"] = wait_timeout
        return self._request("POST", "/submit", body, accept=(200, 202))

    def poll(self, request_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/poll?id={request_id}")

    def result(self, request_id: str) -> Dict[str, Any]:
        """The payload (``status`` tells done/failed); 202 while running."""
        return self._request(
            "GET", f"/result?id={request_id}", accept=(200, 202)
        )

    def wait(
        self, request_id: str, timeout: float = 600.0, interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``/result`` until the request completes."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.result(request_id)
            if payload["_http_status"] == 200:
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"request {request_id} still running after {timeout}s"
                )
            time.sleep(interval)

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")

    # -- sharded cache tier ---------------------------------------------
    def get_peers(self) -> Dict[str, Any]:
        """The daemon's fleet view: self name, membership, down peers."""
        return self._request("GET", "/peers")

    def set_peers(
        self,
        peers: Dict[str, str],
        self_name: Optional[str] = None,
        hop_limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Replace the daemon's ring membership (``name -> host:port``)."""
        body: Dict[str, Any] = {"peers": peers}
        if self_name is not None:
            body["self"] = self_name
        if hop_limit is not None:
            body["hop_limit"] = hop_limit
        return self._request("POST", "/peers", body)

    def peer_result(
        self, fingerprint: str, hops: int = 0
    ) -> Optional[Dict[str, Any]]:
        """The peer-protocol lookup: payload dict on a hit, None on miss."""
        from repro.serve.peers import HOPS_HEADER

        try:
            response = self._request(
                "GET",
                f"/peer/result/{fingerprint}",
                headers={HOPS_HEADER: str(hops)},
            )
        except ServeError as exc:
            if exc.status == 404:
                return None
            raise
        return response.get("payload")

    def peer_put(
        self, fingerprint: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Offer a payload to this daemon's store (write-through path)."""
        return self._request("PUT", f"/peer/result/{fingerprint}", payload)
