"""``nachos-serve``: the long-running disambiguation service.

See :mod:`repro.serve.daemon` for the service itself,
:mod:`repro.serve.protocol` for the wire format, and ``docs/serve.md``
for the operational story (durability guarantees included).
"""

from repro.serve.batcher import Batcher, BatcherStats, ServeTaskError
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import NachosServeDaemon
from repro.serve.hashring import HashRing
from repro.serve.peers import (
    DEFAULT_HOP_LIMIT,
    PeerTier,
    parse_peer_spec,
)
from repro.serve.protocol import (
    MAX_INVOCATIONS,
    SERVE_SCHEMA,
    ProtocolError,
    ServeRequest,
    parse_request,
    payload_key,
)

__all__ = [
    "Batcher",
    "BatcherStats",
    "DEFAULT_HOP_LIMIT",
    "HashRing",
    "MAX_INVOCATIONS",
    "NachosServeDaemon",
    "PeerTier",
    "ProtocolError",
    "SERVE_SCHEMA",
    "ServeClient",
    "ServeError",
    "ServeRequest",
    "ServeTaskError",
    "parse_peer_spec",
    "parse_request",
    "payload_key",
]
