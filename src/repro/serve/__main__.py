"""``python -m repro.serve`` — boot the daemon (same as ``nachos-serve``)."""

from repro.serve.daemon import main

if __name__ == "__main__":
    raise SystemExit(main())
