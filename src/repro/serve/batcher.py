"""In-flight dedup + micro-batching into the supervised worker pool.

The :class:`Batcher` is the seam between the asyncio daemon and the
PR-4 process-pool runtime (:func:`repro.runtime.executor.run_tasks_detailed`):

* **Dedup by fingerprint.**  Each submitted task carries its content
  fingerprint; a second submit of an in-flight fingerprint *attaches*
  to the running computation instead of queueing a duplicate — the
  speculative-allocation idea from the LSQ literature applied to
  requests: claim the slot first, compute once.
* **Micro-batching.**  Pending tasks accumulate for ``batch_window``
  seconds (and while a previous batch occupies the pool), then ship as
  one ``run_tasks_detailed`` call — one supervised pool dispatch per
  burst, not per request.
* **Fault story inherited.**  The pool's retry/timeout/chaos machinery
  is the service's: worker crashes, hangs, and corrupt results retry
  with deterministic backoff; a terminally failed task resolves its
  waiters with :class:`ServeTaskError` carrying the machine-readable
  :class:`~repro.runtime.retry.TaskFailure`.

The pool call runs on a single dedicated thread, which both keeps the
event loop free and serializes batches — exactly one supervised pool
exists at a time.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runtime.executor import SimTask, run_tasks_detailed


class ServeTaskError(RuntimeError):
    """A task failed terminally (after the pool's bounded retries)."""

    def __init__(self, failure: Optional[dict]) -> None:
        self.failure = failure or {}
        kind = self.failure.get("kind", "error")
        message = self.failure.get("message", "task failed")
        super().__init__(f"{kind}: {message}")


@dataclass
class _Entry:
    fingerprint: str
    task: SimTask
    future: "asyncio.Future[Any]"
    submitters: int = 1


@dataclass
class BatcherStats:
    """Monotonic counters the daemon folds into its metrics registry."""

    tasks_submitted: int = 0
    tasks_deduped: int = 0
    tasks_failed: int = 0
    batches: int = 0
    retries: int = 0
    checkpoint_hits: int = 0
    batch_sizes: List[int] = field(default_factory=list)


class Batcher:
    """Fingerprint-deduplicating micro-batcher over the supervised pool."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        policy: Optional[Any] = None,
        batch_window: float = 0.01,
        max_batch: int = 32,
    ) -> None:
        self.jobs = jobs
        self.policy = policy
        self.batch_window = max(0.0, batch_window)
        self.max_batch = max(1, max_batch)
        self.stats = BatcherStats()
        self._inflight: Dict[str, _Entry] = {}
        self._pending: List[_Entry] = []
        self._wake = asyncio.Event()
        self._stopping = False
        self._runner: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="nachos-serve-pool"
        )

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def start(self) -> None:
        self._runner = asyncio.create_task(self._run(), name="serve-batcher")

    async def stop(self) -> None:
        """Drain nothing: fail fast on pending work and shut the pool."""
        self._stopping = True
        self._wake.set()
        if self._runner is not None:
            await self._runner
            self._runner = None
        self._executor.shutdown(wait=True)

    async def submit(self, fingerprint: str, task: SimTask) -> Any:
        """One (workload, system) computation, deduplicated in flight.

        Returns the :class:`~repro.experiments.common.SystemRun`;
        raises :class:`ServeTaskError` on terminal failure.
        """
        if self._stopping:
            raise ServeTaskError({"kind": "shutdown", "message": "daemon stopping"})
        self.stats.tasks_submitted += 1
        entry = self._inflight.get(fingerprint)
        if entry is not None:
            entry.submitters += 1
            self.stats.tasks_deduped += 1
        else:
            future = asyncio.get_running_loop().create_future()
            # Retrieve exceptions even if every waiter got cancelled, so
            # an abandoned failure never warns at GC time.
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            entry = _Entry(fingerprint=fingerprint, task=task, future=future)
            self._inflight[fingerprint] = entry
            self._pending.append(entry)
            self._wake.set()
        # shield(): cancelling one waiter must not cancel the shared
        # computation other waiters are attached to.
        return await asyncio.shield(entry.future)

    # -- dispatch loop --------------------------------------------------
    async def _run(self) -> None:
        while True:
            if not self._pending:
                if self._stopping:
                    break
                await self._wake.wait()
                self._wake.clear()
                continue
            if self._stopping:
                self._fail_pending("daemon stopping")
                break
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)  # gather the burst
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            await self._dispatch(batch)
        self._fail_pending("daemon stopped")

    def _fail_pending(self, message: str) -> None:
        for entry in self._pending:
            self._inflight.pop(entry.fingerprint, None)
            if not entry.future.done():
                entry.future.set_exception(
                    ServeTaskError({"kind": "shutdown", "message": message})
                )
        self._pending.clear()

    async def _dispatch(self, batch: List[_Entry]) -> None:
        tasks = [entry.task for entry in batch]
        self.stats.batches += 1
        self.stats.batch_sizes.append(len(batch))
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                self._executor,
                lambda: run_tasks_detailed(
                    tasks, jobs=self.jobs, policy=self.policy
                ),
            )
        except Exception as exc:  # supervisor itself broke: fail the batch
            for entry in batch:
                self._inflight.pop(entry.fingerprint, None)
                if not entry.future.done():
                    entry.future.set_exception(
                        ServeTaskError(
                            {"kind": "supervisor", "message": str(exc)}
                        )
                    )
            return
        self.stats.retries += outcome.retries
        self.stats.checkpoint_hits += outcome.checkpoint_hits
        failures = {f.index: f.as_dict() for f in outcome.failures}
        for i, entry in enumerate(batch):
            self._inflight.pop(entry.fingerprint, None)
            if entry.future.done():
                continue
            result = outcome.results[i]
            if result is None:
                self.stats.tasks_failed += 1
                entry.future.set_exception(ServeTaskError(failures.get(i)))
            else:
                entry.future.set_result(result)
