"""Wire protocol for ``nachos-serve``: requests, fingerprints, payloads.

A serve request names *what* to simulate — a workload/region spec, the
systems to run it under, the invocation count, and optionally an engine
mode — never *how*.  Everything about the request is content-addressed
with the same fingerprints as the result cache and the sweep checkpoint
(:mod:`repro.runtime.fingerprint` via
:func:`repro.experiments.common.task_fingerprint`):

* every (region, system) pair maps to one **task fingerprint** — the
  daemon's in-flight dedup key, so two concurrent requests that share a
  task squash into one computation;
* the whole request maps to one **request id** — the sorted combine of
  its task fingerprints, so ``systems=["nachos","opt-lsq"]`` and
  ``systems=["opt-lsq","nachos"]`` are the same request.

Request JSON (``POST /submit``)::

    {"region": "bzip2" | "micro.gather" | "gather",
     "systems": ["nachos", "opt-lsq"],          # default: the 3 paper systems
     "invocations": 40,                          # default DEFAULT_INVOCATIONS
     "engine": "reference"|"fast"|"fast-vector", # default: daemon's env
     "warm": true, "check": true,
     "wait": false}                              # long-poll until done

Responses are JSON; see :mod:`repro.serve.daemon` for the endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Bump when the request/response JSON layout changes incompatibly.
SERVE_SCHEMA = 1

#: Hard cap on invocations per request — a service knob, not a physics
#: one: a single huge request would head-of-line-block the shared pool.
MAX_INVOCATIONS = 2000

_ENGINE_MODES = ("reference", "fast", "fast-vector")


class ProtocolError(ValueError):
    """A malformed or unsatisfiable request (HTTP 400)."""


#: Daemon-lifetime workload memo: building a region graph is the
#: expensive part of request validation, and the daemon exists exactly
#: to amortize it.  Workloads are immutable downstream (``run_system``
#: never mutates ``workload.graph``), so sharing is safe.
_workload_memo: Dict[str, Any] = {}


def workload_for(region: str):
    """The (memoized) workload for a region/micro name.

    Raises :class:`ProtocolError` for unknown names, listing what the
    daemon does know.
    """
    workload = _workload_memo.get(region)
    if workload is None:
        from repro.obs.runner import resolve_workload

        try:
            workload = resolve_workload(region)
        except KeyError as exc:
            raise ProtocolError(str(exc.args[0])) from None
        _workload_memo[region] = workload
    return workload


def known_systems() -> Tuple[str, ...]:
    from repro.experiments.common import _KNOWN_SYSTEMS

    return tuple(sorted(_KNOWN_SYSTEMS))


@dataclass(frozen=True)
class ServeRequest:
    """A validated, fingerprinted submit request."""

    region: str
    systems: Tuple[str, ...]
    invocations: int
    engine: Optional[str]          # None = daemon default ($NACHOS_ENGINE)
    warm: bool
    check: bool
    request_id: str
    task_fps: Tuple[str, ...]      # aligned with ``systems``

    def task_kwargs(self) -> dict:
        """``run_system`` kwargs shipped with each :class:`SimTask`."""
        if self.engine is None:
            return {}
        from repro.sim.config import EngineConfig

        return {"engine_config": EngineConfig(mode=self.engine)}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def parse_request(payload: Any) -> ServeRequest:
    """Validate a submit body and compute its content fingerprints."""
    from repro.experiments.common import DEFAULT_INVOCATIONS, task_fingerprint
    from repro.runtime.fingerprint import combine

    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = set(payload) - {
        "region", "systems", "invocations", "engine", "warm", "check", "wait",
        "wait_timeout",
    }
    _require(not unknown, f"unknown request field(s): {', '.join(sorted(unknown))}")

    region = payload.get("region")
    _require(isinstance(region, str) and region, "'region' (string) is required")

    systems = payload.get("systems")
    if systems is None:
        from repro.experiments.common import SYSTEMS

        systems = list(SYSTEMS)
    _require(
        isinstance(systems, (list, tuple)) and systems
        and all(isinstance(s, str) for s in systems),
        "'systems' must be a non-empty list of system names",
    )
    bad = [s for s in systems if s not in known_systems()]
    _require(
        not bad,
        f"unknown system(s) {', '.join(sorted(bad))}; "
        f"known: {', '.join(known_systems())}",
    )
    # Dedup while keeping first-seen order (the response is keyed by
    # system name, so duplicates add nothing).
    systems = tuple(dict.fromkeys(systems))

    invocations = payload.get("invocations", DEFAULT_INVOCATIONS)
    _require(
        isinstance(invocations, int) and not isinstance(invocations, bool)
        and 1 <= invocations <= MAX_INVOCATIONS,
        f"'invocations' must be an integer in [1, {MAX_INVOCATIONS}]",
    )

    engine = payload.get("engine")
    if engine is not None:
        _require(
            engine in _ENGINE_MODES,
            f"unknown engine {engine!r}; expected one of {_ENGINE_MODES}",
        )

    warm = payload.get("warm", True)
    check = payload.get("check", True)
    _require(isinstance(warm, bool), "'warm' must be a boolean")
    _require(isinstance(check, bool), "'check' must be a boolean")

    workload = workload_for(region)
    request = ServeRequest(
        region=region,
        systems=systems,
        invocations=invocations,
        engine=engine,
        warm=warm,
        check=check,
        request_id="",       # placeholder; frozen dataclass rebuilt below
        task_fps=(),
    )
    kwargs = request.task_kwargs()
    # The task fingerprint is the checkpoint/cache lineage key; folding
    # in the *effective* engine mode keeps dedup honest when the daemon
    # itself runs under $NACHOS_ENGINE.
    from repro.sim.factory import resolve_engine_mode

    effective_engine = engine or resolve_engine_mode(None)
    task_fps = tuple(
        combine(
            "serve-task",
            task_fingerprint(workload, system, invocations, warm, kwargs),
            f"engine={effective_engine}",
        )
        for system in systems
    )
    request_id = combine("serve-request", *sorted(task_fps))
    return ServeRequest(
        region=region,
        systems=systems,
        invocations=invocations,
        engine=engine,
        warm=warm,
        check=check,
        request_id=request_id,
        task_fps=task_fps,
    )


def payload_key(task_fp: str) -> str:
    """Result-store key for one task's JSON payload.

    Namespaced under the task fingerprint so serve payloads can share a
    :class:`~repro.runtime.cache.ResultCache` root with compile/sim
    entries without colliding.  This key is the unit the sharded peer
    tier moves around: ``GET/PUT /peer/result/<task_fp>`` reads and
    writes exactly ``store[payload_key(task_fp)]``.
    """
    from repro.runtime.fingerprint import combine

    return combine("serve-payload", task_fp)


def run_payload(run) -> Dict[str, Any]:
    """JSON-safe summary of one :class:`~repro.experiments.common.SystemRun`."""
    sim = run.sim
    return {
        "cycles": int(sim.cycles),
        "invocations": int(sim.invocations),
        "energy": float(sim.total_energy),
        "correct": bool(run.correct),
        "n_mdes": int(run.n_mdes),
        "l1_hits": int(sim.l1_hits),
        "l1_misses": int(sim.l1_misses),
    }
