"""``nachos-serve`` — the long-running disambiguation service.

An asyncio daemon that keeps the whole stack hot — workload graphs,
compile results, the content-addressed result cache, and the supervised
worker pool — so a disambiguation query costs a cache lookup or one
pooled simulation instead of a full process startup + compile.

Endpoints (JSON over HTTP/1.1, TCP or a unix socket):

=======================  ==============================================
``POST /submit``         submit a request (see
                         :mod:`repro.serve.protocol`); returns
                         ``{"request_id", "status", "deduped"}``.  With
                         ``"wait": true`` the response long-polls until
                         the request finishes and carries the payload.
``GET /poll?id=FP``      ``{"request_id", "status"}`` — status is
                         ``running``, ``done``, or ``failed``
``GET /result?id=FP``    the result payload (``202`` while running,
                         ``404`` for unknown/evicted ids)
``GET /metrics``         the request-metrics registry + read-through
                         cache counters, JSON
``GET /healthz``         liveness + uptime
``POST /shutdown``       graceful stop (the bench/CI harnesses use it)
=======================  ==============================================

Dedup happens twice: identical *requests* attach to the retained
request record, and identical *(region, system)* tasks across different
requests attach in-flight inside the :class:`~repro.serve.batcher.Batcher`.
Completed results are served read-through from the shared
:class:`~repro.runtime.cache.ResultCache`, so even a daemon restart
answers repeat queries from disk.

The fault story is the PR-4 runtime's, unchanged: worker crashes,
hangs, and corrupt results retry with deterministic backoff
(``--timeout`` / ``--max-retries``), and a ``NACHOS_CHAOS`` spec in the
daemon's environment is inherited by pool workers — a chaos campaign
against a live daemon must return results byte-identical to a
fault-free one (``benchmarks/bench_serve.py --chaos`` enforces it).
Do not use the chaos ``abort@`` point with the daemon: it SIGKILLs the
supervisor, i.e. the daemon itself.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.obs.metrics import MetricsRegistry, metrics_from_cache
from repro.serve.batcher import Batcher, ServeTaskError
from repro.serve.protocol import (
    SERVE_SCHEMA,
    ProtocolError,
    ServeRequest,
    parse_request,
    run_payload,
    workload_for,
)

#: Ceiling on ``"wait": true`` long-polls, so a stuck request cannot pin
#: a connection forever (the client can always re-poll).
MAX_WAIT_SECONDS = 300.0

_MAX_BODY_BYTES = 1 << 20
_READ_TIMEOUT = 30.0

RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class _RequestRecord:
    request: ServeRequest
    status: str = RUNNING
    payload: Optional[Dict[str, Any]] = None
    created: float = field(default_factory=time.perf_counter)
    event: asyncio.Event = field(default_factory=asyncio.Event)


class NachosServeDaemon:
    """The serve daemon: HTTP front, batcher back, metrics throughout."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8737,
        socket_path: Optional[str] = None,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        batch_window: float = 0.01,
        max_batch: int = 32,
        retain_results: int = 1024,
        ledger: Optional[str] = None,
        quiet: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.jobs = jobs
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.retain_results = max(1, retain_results)
        self.ledger = ledger
        self.quiet = quiet
        self.policy = self._resolve_policy(timeout, max_retries)
        self.metrics = MetricsRegistry()
        self.requests: "OrderedDict[str, _RequestRecord]" = OrderedDict()
        self.batcher: Optional[Batcher] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started_monotonic = 0.0

    @staticmethod
    def _resolve_policy(timeout, max_retries):
        from repro.runtime.executor import get_policy

        policy = get_policy()
        if timeout is None and max_retries is None:
            return policy
        import dataclasses

        return dataclasses.replace(
            policy,
            timeout=(timeout if timeout and timeout > 0 else None)
            if timeout is not None else policy.timeout,
            max_retries=max(0, max_retries)
            if max_retries is not None else policy.max_retries,
        )

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        from repro.runtime.cache import get_cache
        from repro.runtime.checkpoint import get_checkpoint

        # Reclaim crash debris (tmp files from previously killed
        # writers) before taking traffic — the durability layer is hot
        # 24/7 under this daemon, so boot is the natural sweep point.
        get_cache().sweep_stale()
        checkpoint = get_checkpoint()
        if checkpoint is not None:
            checkpoint.sweep_stale()

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.batcher = Batcher(
            jobs=self.jobs,
            policy=self.policy,
            batch_window=self.batch_window,
            max_batch=self.max_batch,
        )
        await self.batcher.start()
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._client_connected, path=self.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._client_connected, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        if not self.quiet:
            print(f"[nachos-serve] listening on {self.address}", flush=True)

    @property
    def address(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.batcher is not None:
            await self.batcher.stop()
        if self.socket_path:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self.ledger:
            self._append_ledger()

    async def serve_forever(self, ready: Optional[threading.Event] = None) -> None:
        await self.start()
        if ready is not None:
            ready.set()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    def run(self, ready: Optional[threading.Event] = None) -> None:
        asyncio.run(self.serve_forever(ready))

    def request_shutdown(self) -> None:
        """Thread-safe graceful stop (tests and signal handlers)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    def serve_in_thread(self) -> threading.Thread:
        """Boot the daemon on a background thread; returns once listening."""
        ready = threading.Event()
        thread = threading.Thread(
            target=self.run, args=(ready,), name="nachos-serve", daemon=True
        )
        thread.start()
        if not ready.wait(timeout=60):
            raise RuntimeError("nachos-serve daemon failed to start")
        return thread

    # -- request execution ---------------------------------------------
    async def _run_request(self, record: _RequestRecord) -> None:
        assert self.batcher is not None
        req = record.request
        from repro.runtime.executor import SimTask

        workload = workload_for(req.region)
        kwargs = req.task_kwargs()
        started = time.perf_counter()
        coros = [
            self.batcher.submit(
                fp,
                SimTask(
                    workload=workload,
                    system=system,
                    invocations=req.invocations,
                    check=req.check,
                    warm=req.warm,
                    kwargs=kwargs,
                ),
            )
            for system, fp in zip(req.systems, req.task_fps)
        ]
        runs = await asyncio.gather(*coros, return_exceptions=True)
        results: Dict[str, Any] = {}
        failed: Dict[str, Any] = {}
        for system, run in zip(req.systems, runs):
            if isinstance(run, ServeTaskError):
                failed[system] = run.failure
            elif isinstance(run, BaseException):
                failed[system] = {"kind": "error", "message": str(run)}
            else:
                results[system] = run_payload(run)
        elapsed = time.perf_counter() - started
        record.status = FAILED if failed else DONE
        record.payload = {
            "schema": SERVE_SCHEMA,
            "request_id": req.request_id,
            "status": record.status,
            "region": req.region,
            "invocations": req.invocations,
            "engine": req.engine,
            "results": results,
            "failed": failed,
            "elapsed_seconds": elapsed,
        }
        self.metrics.histogram("serve.request_latency_seconds").observe(elapsed)
        self.metrics.counter(
            "serve.requests_failed" if failed else "serve.requests_done"
        ).inc()
        record.event.set()

    def _retain(self, request_id: str, record: _RequestRecord) -> None:
        self.requests[request_id] = record
        while len(self.requests) > self.retain_results:
            for key, old in self.requests.items():
                if old.status != RUNNING:
                    del self.requests[key]
                    break
            else:
                break  # everything is running; nothing evictable

    # -- HTTP front -----------------------------------------------------
    async def _client_connected(self, reader, writer) -> None:
        try:
            status, payload = await self._handle_one(reader)
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            writer.close()
            return
        except ProtocolError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # never let a handler kill the daemon
            self.metrics.counter("serve.internal_errors").inc()
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except OSError:
                pass

    async def _handle_one(self, reader) -> Tuple[int, Dict[str, Any]]:
        line = await asyncio.wait_for(reader.readline(), _READ_TIMEOUT)
        if not line:
            raise ConnectionError("empty request")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ProtocolError("malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(), _READ_TIMEOUT)
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ProtocolError("bad Content-Length")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise ProtocolError("request body too large")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        params = {k: v[-1] for k, v in parse_qs(query).items()}
        return await self._route(method.upper(), path, params, body)

    async def _route(
        self, method: str, path: str, params: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/submit":
            if method != "POST":
                return 405, {"error": "POST /submit"}
            return await self._handle_submit(body)
        if path == "/poll":
            return self._handle_poll(params)
        if path == "/result":
            return self._handle_result(params)
        if path == "/metrics":
            return 200, self.metrics_snapshot()
        if path == "/healthz":
            return 200, {
                "ok": True,
                "schema": SERVE_SCHEMA,
                "uptime_seconds": time.monotonic() - self._started_monotonic,
            }
        if path == "/shutdown":
            if method != "POST":
                return 405, {"error": "POST /shutdown"}
            assert self._stop_event is not None
            self._stop_event.set()
            return 200, {"ok": True, "stopping": True}
        return 404, {"error": f"unknown endpoint {path}"}

    async def _handle_submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            raise ProtocolError("request body is not valid JSON")
        request = parse_request(payload)
        self.metrics.counter("serve.requests").inc()

        record = self.requests.get(request.request_id)
        deduped = record is not None and record.status != FAILED
        if deduped:
            # Attach: the running/done record answers for this submit
            # too.  (Done records are the retained-result fast path.)
            self.requests.move_to_end(request.request_id)
            self.metrics.counter("serve.requests_deduped").inc()
        else:
            record = _RequestRecord(request=request)
            self._retain(request.request_id, record)
            asyncio.get_running_loop().create_task(self._run_request(record))

        if payload.get("wait"):
            wait_timeout = min(
                float(payload.get("wait_timeout", MAX_WAIT_SECONDS)),
                MAX_WAIT_SECONDS,
            )
            try:
                await asyncio.wait_for(record.event.wait(), wait_timeout)
            except asyncio.TimeoutError:
                pass
        if record.status != RUNNING and record.payload is not None:
            response = dict(record.payload)
            response["deduped"] = deduped
            return 200, response
        return 202, {
            "schema": SERVE_SCHEMA,
            "request_id": request.request_id,
            "status": record.status,
            "deduped": deduped,
        }

    def _record_for(self, params: Dict[str, str]) -> Optional[_RequestRecord]:
        request_id = params.get("id", "")
        if not request_id:
            raise ProtocolError("missing ?id=<request_id>")
        return self.requests.get(request_id)

    def _handle_poll(self, params) -> Tuple[int, Dict[str, Any]]:
        record = self._record_for(params)
        if record is None:
            return 404, {"error": "unknown request id"}
        return 200, {
            "request_id": record.request.request_id,
            "status": record.status,
            "age_seconds": time.perf_counter() - record.created,
        }

    def _handle_result(self, params) -> Tuple[int, Dict[str, Any]]:
        record = self._record_for(params)
        if record is None:
            return 404, {"error": "unknown request id"}
        if record.status == RUNNING or record.payload is None:
            return 202, {
                "request_id": record.request.request_id,
                "status": record.status,
            }
        self.metrics.counter("serve.results_served").inc()
        return 200, record.payload

    # -- telemetry ------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """One JSON view: request metrics, batcher counters, cache
        read-through counters, and liveness gauges."""
        snap = MetricsRegistry()
        snap.merge(self.metrics)
        if self.batcher is not None:
            stats = self.batcher.stats
            snap.counter("serve.tasks_submitted").inc(stats.tasks_submitted)
            snap.counter("serve.tasks_deduped").inc(stats.tasks_deduped)
            snap.counter("serve.tasks_failed").inc(stats.tasks_failed)
            snap.counter("serve.batches").inc(stats.batches)
            snap.counter("serve.pool_retries").inc(stats.retries)
            snap.counter("serve.checkpoint_hits").inc(stats.checkpoint_hits)
            snap.histogram("serve.batch_size").observe_many(stats.batch_sizes)
            snap.gauge("serve.inflight_tasks").set(self.batcher.inflight)
        metrics_from_cache(registry=snap, prefix="cache")
        snap.gauge("serve.retained_requests").set(len(self.requests))
        snap.gauge("serve.uptime_seconds").set(
            time.monotonic() - self._started_monotonic
        )
        return snap.as_dict()

    def _append_ledger(self) -> None:
        from repro.obs.perf import PerfLedger, PerfRecord, capture_context

        snapshot = self.metrics_snapshot()
        metrics: Dict[str, float] = {}
        for name, entry in snapshot.items():
            if entry["type"] in ("counter", "gauge"):
                metrics[name] = float(entry["value"])
            else:
                for key, value in entry.items():
                    if key != "type":
                        metrics[f"{name}.{key}"] = float(value)
        context = capture_context(
            engine=os.environ.get("NACHOS_ENGINE", "reference"),
            jobs=self.jobs,
            mode="daemon",
        )
        ledger = PerfLedger(self.ledger)
        fp = ledger.append(
            PerfRecord(source="serve-daemon", metrics=metrics, context=context)
        )
        if not self.quiet:
            print(f"[nachos-serve] ledger {ledger.path}: appended {fp}",
                  flush=True)


# ----------------------------------------------------------------------
# CLI entry point (`nachos-serve`, also `nachos-repro serve ...`)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="nachos-serve",
        description="Long-running NACHOS disambiguation service "
        "(submit/poll/result over HTTP or a unix socket).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8737,
        help="TCP port (0 = ephemeral; the chosen port is announced and "
        "written to --ready-file)",
    )
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a unix domain socket instead of TCP",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker-pool width per batch (default $NACHOS_JOBS or 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget (default $NACHOS_TIMEOUT or off)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="bounded retries per task (default $NACHOS_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--engine", choices=["reference", "fast", "fast-vector"], default=None,
        help="default engine mode (exported as $NACHOS_ENGINE so pool "
        "workers inherit it; per-request 'engine' overrides)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.01, metavar="SECONDS",
        help="micro-batching window: how long submissions accumulate "
        "before one pool dispatch (default 0.01)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32,
        help="max tasks per pool dispatch (default 32)",
    )
    parser.add_argument(
        "--retain", type=int, default=1024, metavar="N",
        help="completed request payloads kept for /result (LRU, default 1024)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append a serve-daemon telemetry record to this perf ledger "
        "on graceful shutdown",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write {pid, host, port, socket} JSON here once listening "
        "(harness handshake)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.engine is not None:
        os.environ["NACHOS_ENGINE"] = args.engine

    daemon = NachosServeDaemon(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        jobs=args.jobs,
        timeout=args.timeout,
        max_retries=args.max_retries,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        retain_results=args.retain,
        ledger=args.ledger,
        quiet=args.quiet,
    )

    async def _serve() -> None:
        await daemon.start()
        if args.ready_file:
            ready = {
                "pid": os.getpid(),
                "host": daemon.host,
                "port": daemon.port,
                "socket": daemon.socket_path,
                "address": daemon.address,
            }
            with open(args.ready_file, "w") as fh:
                json.dump(ready, fh)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, daemon._stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass
        await daemon._stop_event.wait()
        await daemon.stop()

    asyncio.run(_serve())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
