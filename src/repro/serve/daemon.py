"""``nachos-serve`` — the long-running disambiguation service.

An asyncio daemon that keeps the whole stack hot — workload graphs,
compile results, the content-addressed result cache, and the supervised
worker pool — so a disambiguation query costs a cache lookup or one
pooled simulation instead of a full process startup + compile.

Endpoints (JSON over HTTP/1.1, TCP or a unix socket):

=======================  ==============================================
``POST /submit``         submit a request (see
                         :mod:`repro.serve.protocol`); returns
                         ``{"request_id", "status", "deduped"}``.  With
                         ``"wait": true`` the response long-polls until
                         the request finishes and carries the payload.
``GET /poll?id=FP``      ``{"request_id", "status"}`` — status is
                         ``running``, ``done``, or ``failed``
``GET /result?id=FP``    the result payload (``202`` while running,
                         ``404`` for unknown/evicted ids)
``GET /metrics``         the request-metrics registry + read-through
                         cache counters, JSON
``GET /healthz``         liveness + uptime
``POST /shutdown``       graceful stop (the bench/CI harnesses use it)
``GET /peer/result/<fp>``  sharded-tier internal: this daemon's stored
                         payload for a task fingerprint (hop-limited
                         forwarding, see :mod:`repro.serve.peers`)
``PUT /peer/result/<fp>``  sharded-tier internal: accept a computed
                         payload offered by a non-owner peer
``GET/POST /peers``      fleet membership view / replace (the bench
                         multi-daemon harness wires rings this way)
=======================  ==============================================

Dedup happens twice: identical *requests* attach to the retained
request record, and identical *(region, system)* tasks across different
requests attach in-flight inside the :class:`~repro.serve.batcher.Batcher`.
Completed results are served read-through from the shared
:class:`~repro.runtime.cache.ResultCache`, so even a daemon restart
answers repeat queries from disk.

The fault story is the PR-4 runtime's, unchanged: worker crashes,
hangs, and corrupt results retry with deterministic backoff
(``--timeout`` / ``--max-retries``), and a ``NACHOS_CHAOS`` spec in the
daemon's environment is inherited by pool workers — a chaos campaign
against a live daemon must return results byte-identical to a
fault-free one (``benchmarks/bench_serve.py --chaos`` enforces it).
Do not use the chaos ``abort@`` point with the daemon: it SIGKILLs the
supervisor, i.e. the daemon itself.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.obs.metrics import MetricsRegistry, metrics_from_cache
from repro.serve.batcher import Batcher, ServeTaskError
from repro.serve.peers import (
    DEFAULT_HOP_LIMIT,
    HOPS_HEADER,
    PeerTier,
    parse_peer_spec,
)
from repro.serve.protocol import (
    SERVE_SCHEMA,
    ProtocolError,
    ServeRequest,
    parse_request,
    payload_key,
    run_payload,
    workload_for,
)

#: Ceiling on ``"wait": true`` long-polls, so a stuck request cannot pin
#: a connection forever (the client can always re-poll).
MAX_WAIT_SECONDS = 300.0

_MAX_BODY_BYTES = 1 << 20
_READ_TIMEOUT = 30.0

RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class _RequestRecord:
    request: ServeRequest
    status: str = RUNNING
    payload: Optional[Dict[str, Any]] = None
    created: float = field(default_factory=time.perf_counter)
    event: asyncio.Event = field(default_factory=asyncio.Event)


class NachosServeDaemon:
    """The serve daemon: HTTP front, batcher back, metrics throughout."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8737,
        socket_path: Optional[str] = None,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        batch_window: float = 0.01,
        max_batch: int = 32,
        retain_results: int = 1024,
        ledger: Optional[str] = None,
        quiet: bool = False,
        peers: Optional[Dict[str, str]] = None,
        peer_id: Optional[str] = None,
        hop_limit: int = DEFAULT_HOP_LIMIT,
        store_dir: Optional[str] = None,
        peer_timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.jobs = jobs
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.retain_results = max(1, retain_results)
        self.ledger = ledger
        self.quiet = quiet
        self.policy = self._resolve_policy(timeout, max_retries)
        self.metrics = MetricsRegistry()
        self.requests: "OrderedDict[str, _RequestRecord]" = OrderedDict()
        self.batcher: Optional[Batcher] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started_monotonic = 0.0
        # Sharded cache tier (all optional; a peer-less daemon behaves
        # exactly as before PR 9).
        self._boot_peers = dict(peers) if peers else None
        self.peer_id = peer_id
        self.hop_limit = max(1, hop_limit)
        self.peer_timeout = peer_timeout
        self.store_dir = store_dir
        self.peer_tier: Optional[PeerTier] = None
        self.store = None  # type: Optional[Any]
        self._offers: set = set()  # in-flight write-through tasks

    @staticmethod
    def _resolve_policy(timeout, max_retries):
        from repro.runtime.executor import get_policy

        policy = get_policy()
        if timeout is None and max_retries is None:
            return policy
        import dataclasses

        return dataclasses.replace(
            policy,
            timeout=(timeout if timeout and timeout > 0 else None)
            if timeout is not None else policy.timeout,
            max_retries=max(0, max_retries)
            if max_retries is not None else policy.max_retries,
        )

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        from repro.runtime.cache import get_cache
        from repro.runtime.checkpoint import get_checkpoint

        # Reclaim crash debris (tmp files from previously killed
        # writers) before taking traffic — the durability layer is hot
        # 24/7 under this daemon, so boot is the natural sweep point.
        get_cache().sweep_stale()
        checkpoint = get_checkpoint()
        if checkpoint is not None:
            checkpoint.sweep_stale()

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.batcher = Batcher(
            jobs=self.jobs,
            policy=self.policy,
            batch_window=self.batch_window,
            max_batch=self.max_batch,
        )
        await self.batcher.start()
        if self.socket_path:
            self._server = await asyncio.start_unix_server(
                self._client_connected, path=self.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._client_connected, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        if self.store_dir:
            self._activate_store()
        if self._boot_peers is not None:
            self.configure_peers(self._boot_peers, self_name=self.peer_id)
        self._started_monotonic = time.monotonic()
        if not self.quiet:
            print(f"[nachos-serve] listening on {self.address}", flush=True)

    # -- sharded cache tier ---------------------------------------------
    def _activate_store(self):
        """The daemon-local payload store the peer tier reads and writes.

        A ``--store-dir`` gets its own :class:`ResultCache` root (one
        per fleet member); otherwise the shared process cache is reused.
        Either way every put is the cache's crash-consistent
        tmp+fsync+rename, so a killed peer rejoins with a complete
        store.
        """
        if self.store is None:
            from repro.runtime.cache import ResultCache, get_cache

            if self.store_dir:
                self.store = ResultCache(root=self.store_dir)
                self.store.sweep_stale()
            else:
                self.store = get_cache()
        return self.store

    def configure_peers(
        self,
        membership: Dict[str, str],
        self_name: Optional[str] = None,
        hop_limit: Optional[int] = None,
    ) -> PeerTier:
        """Install/replace the fleet view (boot ``--peers`` and
        ``POST /peers`` both land here).  Activates the payload store."""
        name = self_name or self.peer_id
        if name is None and self.peer_tier is not None:
            name = self.peer_tier.self_name
        if name is None:
            # Fixed-port fleets can use the bind address as identity;
            # ephemeral-port fleets must name themselves (--peer-id).
            name = f"{self.host}:{self.port}"
        peers = dict(membership)
        if name not in peers:
            if self.socket_path:
                raise ProtocolError(
                    "a unix-socket daemon cannot join a TCP peer ring "
                    "without an explicit membership entry for itself"
                )
            peers[name] = f"{self.host}:{self.port}"
        if hop_limit is not None:
            self.hop_limit = max(1, hop_limit)
        try:
            if self.peer_tier is None:
                self.peer_tier = PeerTier(
                    self_name=name,
                    membership=peers,
                    hop_limit=self.hop_limit,
                    fetch_timeout=self.peer_timeout,
                    policy=self.policy,
                )
            else:
                self.peer_tier.self_name = name
                self.peer_tier.hop_limit = self.hop_limit
                self.peer_tier.set_membership(peers)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        self.peer_id = name
        self._activate_store()
        if not self.quiet:
            print(
                f"[nachos-serve] peer ring: self={name} "
                f"peers={sorted(peers)}",
                flush=True,
            )
        return self.peer_tier

    @property
    def address(self) -> str:
        if self.socket_path:
            return f"unix:{self.socket_path}"
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        if self._offers:
            # Write-through offers are bounded by the peer timeout; let
            # them land (or fail) instead of destroying pending tasks.
            await asyncio.gather(*list(self._offers), return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.batcher is not None:
            await self.batcher.stop()
        if self.socket_path:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self.ledger:
            self._append_ledger()

    async def serve_forever(self, ready: Optional[threading.Event] = None) -> None:
        await self.start()
        if ready is not None:
            ready.set()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    def run(self, ready: Optional[threading.Event] = None) -> None:
        asyncio.run(self.serve_forever(ready))

    def request_shutdown(self) -> None:
        """Thread-safe graceful stop (tests and signal handlers)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    def serve_in_thread(self) -> threading.Thread:
        """Boot the daemon on a background thread; returns once listening."""
        ready = threading.Event()
        thread = threading.Thread(
            target=self.run, args=(ready,), name="nachos-serve", daemon=True
        )
        thread.start()
        if not ready.wait(timeout=60):
            raise RuntimeError("nachos-serve daemon failed to start")
        return thread

    # -- request execution ---------------------------------------------
    async def _resolve_task(self, req: ServeRequest, system: str, fp: str):
        """One task's payload: local store, then the ring owner, then
        compute — the read-through order that makes a fleet share one
        logical store (misses degrade toward compute, never error)."""
        assert self.batcher is not None
        key = payload_key(fp) if self.store is not None else None
        if key is not None:
            cached = self.store.get(key)
            if isinstance(cached, dict):
                self.metrics.counter("serve.store_hits").inc()
                return cached
        tier = self.peer_tier
        if tier is not None:
            fetch = await tier.fetch(fp)
            self.metrics.counter(f"serve.peer_{fetch.outcome}").inc()
            if fetch.outcome in ("hit", "miss"):
                self.metrics.histogram("serve.peer_fetch_seconds").observe(
                    fetch.elapsed
                )
            if fetch.outcome == "hit" and fetch.payload is not None:
                # Hot keys replicate toward traffic: keep a local copy.
                if key is not None:
                    self.store.put(key, fetch.payload)
                return fetch.payload
        from repro.runtime.executor import SimTask

        run = await self.batcher.submit(
            fp,
            SimTask(
                workload=workload_for(req.region),
                system=system,
                invocations=req.invocations,
                check=req.check,
                warm=req.warm,
                kwargs=req.task_kwargs(),
            ),
        )
        payload = run_payload(run)
        if key is not None:
            self.store.put(key, payload)
        if tier is not None and tier.owner(fp) not in (None, tier.self_name):
            # Best-effort write-through so the owner's disk becomes the
            # fleet-wide source for this key.  Fire-and-forget: losing
            # an offer costs a future recompute, never correctness.
            task = asyncio.get_running_loop().create_task(
                self._offer_to_owner(fp, payload)
            )
            self._offers.add(task)
            task.add_done_callback(self._offers.discard)
        return payload

    async def _offer_to_owner(self, fp: str, payload: Dict[str, Any]) -> None:
        assert self.peer_tier is not None
        accepted = await self.peer_tier.offer(fp, payload)
        self.metrics.counter(
            "serve.peer_offers_sent" if accepted else "serve.peer_offers_dropped"
        ).inc()

    async def _run_request(self, record: _RequestRecord) -> None:
        assert self.batcher is not None
        req = record.request
        started = time.perf_counter()
        coros = [
            self._resolve_task(req, system, fp)
            for system, fp in zip(req.systems, req.task_fps)
        ]
        runs = await asyncio.gather(*coros, return_exceptions=True)
        results: Dict[str, Any] = {}
        failed: Dict[str, Any] = {}
        for system, run in zip(req.systems, runs):
            if isinstance(run, ServeTaskError):
                failed[system] = run.failure
            elif isinstance(run, BaseException):
                failed[system] = {"kind": "error", "message": str(run)}
            else:
                results[system] = run
        elapsed = time.perf_counter() - started
        record.status = FAILED if failed else DONE
        record.payload = {
            "schema": SERVE_SCHEMA,
            "request_id": req.request_id,
            "status": record.status,
            "region": req.region,
            "invocations": req.invocations,
            "engine": req.engine,
            "results": results,
            "failed": failed,
            "elapsed_seconds": elapsed,
        }
        self.metrics.histogram("serve.request_latency_seconds").observe(elapsed)
        self.metrics.counter(
            "serve.requests_failed" if failed else "serve.requests_done"
        ).inc()
        record.event.set()

    def _retain(self, request_id: str, record: _RequestRecord) -> None:
        self.requests[request_id] = record
        while len(self.requests) > self.retain_results:
            for key, old in self.requests.items():
                if old.status != RUNNING:
                    del self.requests[key]
                    break
            else:
                break  # everything is running; nothing evictable

    # -- HTTP front -----------------------------------------------------
    async def _client_connected(self, reader, writer) -> None:
        try:
            status, payload = await self._handle_one(reader)
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            writer.close()
            return
        except ProtocolError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # never let a handler kill the daemon
            self.metrics.counter("serve.internal_errors").inc()
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except OSError:
                pass

    async def _handle_one(self, reader) -> Tuple[int, Dict[str, Any]]:
        line = await asyncio.wait_for(reader.readline(), _READ_TIMEOUT)
        if not line:
            raise ConnectionError("empty request")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ProtocolError("malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(), _READ_TIMEOUT)
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ProtocolError("bad Content-Length")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise ProtocolError("request body too large")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        params = {k: v[-1] for k, v in parse_qs(query).items()}
        return await self._route(method.upper(), path, params, body, headers)

    async def _route(
        self,
        method: str,
        path: str,
        params: Dict[str, str],
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        if path.startswith("/peer/result/"):
            fp = path[len("/peer/result/"):]
            if method == "GET":
                return await self._handle_peer_get(fp, headers or {})
            if method == "PUT":
                return self._handle_peer_put(fp, body)
            return 405, {"error": "GET or PUT /peer/result/<fp>"}
        if path == "/peers":
            if method == "GET":
                return self._handle_peers_get()
            if method == "POST":
                return self._handle_peers_post(body)
            return 405, {"error": "GET or POST /peers"}
        if path == "/submit":
            if method != "POST":
                return 405, {"error": "POST /submit"}
            return await self._handle_submit(body)
        if path == "/poll":
            return self._handle_poll(params)
        if path == "/result":
            return self._handle_result(params)
        if path == "/metrics":
            return 200, self.metrics_snapshot()
        if path == "/healthz":
            return 200, {
                "ok": True,
                "schema": SERVE_SCHEMA,
                "uptime_seconds": time.monotonic() - self._started_monotonic,
            }
        if path == "/shutdown":
            if method != "POST":
                return 405, {"error": "POST /shutdown"}
            assert self._stop_event is not None
            self._stop_event.set()
            return 200, {"ok": True, "stopping": True}
        return 404, {"error": f"unknown endpoint {path}"}

    async def _handle_submit(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            raise ProtocolError("request body is not valid JSON")
        request = parse_request(payload)
        self.metrics.counter("serve.requests").inc()

        record = self.requests.get(request.request_id)
        deduped = record is not None and record.status != FAILED
        if deduped:
            # Attach: the running/done record answers for this submit
            # too.  (Done records are the retained-result fast path.)
            self.requests.move_to_end(request.request_id)
            self.metrics.counter("serve.requests_deduped").inc()
        else:
            record = _RequestRecord(request=request)
            self._retain(request.request_id, record)
            asyncio.get_running_loop().create_task(self._run_request(record))

        if payload.get("wait"):
            wait_timeout = min(
                float(payload.get("wait_timeout", MAX_WAIT_SECONDS)),
                MAX_WAIT_SECONDS,
            )
            try:
                await asyncio.wait_for(record.event.wait(), wait_timeout)
            except asyncio.TimeoutError:
                pass
        if record.status != RUNNING and record.payload is not None:
            response = dict(record.payload)
            response["deduped"] = deduped
            return 200, response
        return 202, {
            "schema": SERVE_SCHEMA,
            "request_id": request.request_id,
            "status": record.status,
            "deduped": deduped,
        }

    def _record_for(self, params: Dict[str, str]) -> Optional[_RequestRecord]:
        request_id = params.get("id", "")
        if not request_id:
            raise ProtocolError("missing ?id=<request_id>")
        return self.requests.get(request_id)

    def _handle_poll(self, params) -> Tuple[int, Dict[str, Any]]:
        record = self._record_for(params)
        if record is None:
            return 404, {"error": "unknown request id"}
        return 200, {
            "request_id": record.request.request_id,
            "status": record.status,
            "age_seconds": time.perf_counter() - record.created,
        }

    def _handle_result(self, params) -> Tuple[int, Dict[str, Any]]:
        record = self._record_for(params)
        if record is None:
            return 404, {"error": "unknown request id"}
        if record.status == RUNNING or record.payload is None:
            return 202, {
                "request_id": record.request.request_id,
                "status": record.status,
            }
        self.metrics.counter("serve.results_served").inc()
        return 200, record.payload

    # -- peer protocol (sharded cache tier) -----------------------------
    async def _handle_peer_get(
        self, fp: str, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        """Serve a stored payload to a peer, forwarding at most once
        toward the node *this* daemon believes owns the key (membership
        views skew during rolling restarts); the hop counter makes a
        forwarding cycle terminate instead of looping."""
        if not fp:
            raise ProtocolError("missing task fingerprint")
        try:
            hops = int(headers.get(HOPS_HEADER.lower(), "0") or 0)
        except ValueError:
            raise ProtocolError(f"bad {HOPS_HEADER} header") from None
        if hops >= self.hop_limit:
            self.metrics.counter("serve.peer_hop_limited").inc()
            return 400, {
                "error": f"hop limit {self.hop_limit} exceeded",
                "fingerprint": fp,
                "hops": hops,
            }
        if self.store is not None:
            cached = self.store.get(payload_key(fp))
            if isinstance(cached, dict):
                self.metrics.counter("serve.peer_serves").inc()
                return 200, {
                    "fingerprint": fp,
                    "payload": cached,
                    "source": self.peer_id,
                    "hops": hops,
                }
        tier = self.peer_tier
        if tier is not None and hops + 1 < self.hop_limit:
            owner = tier.owner(fp)
            if owner not in (None, tier.self_name):
                fetch = await tier.fetch(fp, hops=hops + 1)
                if fetch.outcome == "hit" and fetch.payload is not None:
                    self.metrics.counter("serve.peer_forwards").inc()
                    return 200, {
                        "fingerprint": fp,
                        "payload": fetch.payload,
                        "source": fetch.peer,
                        "hops": hops + 1,
                        "forwarded": True,
                    }
        return 404, {"error": "miss", "fingerprint": fp}

    def _handle_peer_put(
        self, fp: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        """Accept a payload a non-owner computed (write-through offer)."""
        if not fp:
            raise ProtocolError("missing task fingerprint")
        if self.store is None:
            return 400, {"error": "peer tier not configured"}
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            raise ProtocolError("offer body is not valid JSON") from None
        if not isinstance(payload, dict) or not payload:
            raise ProtocolError("offer body must be a non-empty JSON object")
        self.store.put(payload_key(fp), payload)
        self.metrics.counter("serve.peer_offers_accepted").inc()
        return 200, {"ok": True, "fingerprint": fp, "stored": True}

    def _handle_peers_get(self) -> Tuple[int, Dict[str, Any]]:
        if self.peer_tier is None:
            return 200, {"self": self.peer_id, "peers": {}, "down": []}
        return 200, self.peer_tier.snapshot()

    def _handle_peers_post(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            raise ProtocolError("membership body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise ProtocolError("membership body must be a JSON object")
        peers = payload.get("peers")
        if not isinstance(peers, dict) or not peers or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in peers.items()
        ):
            raise ProtocolError(
                "'peers' must be a non-empty {name: \"host:port\"} object"
            )
        self_name = payload.get("self")
        if self_name is not None and not isinstance(self_name, str):
            raise ProtocolError("'self' must be a string peer name")
        hop_limit = payload.get("hop_limit")
        if hop_limit is not None and (
            not isinstance(hop_limit, int) or isinstance(hop_limit, bool)
            or hop_limit < 1
        ):
            raise ProtocolError("'hop_limit' must be a positive integer")
        self.configure_peers(peers, self_name=self_name, hop_limit=hop_limit)
        assert self.peer_tier is not None
        return 200, self.peer_tier.snapshot()

    # -- telemetry ------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        """One JSON view: request metrics, batcher counters, cache
        read-through counters, and liveness gauges."""
        snap = MetricsRegistry()
        snap.merge(self.metrics)
        if self.batcher is not None:
            stats = self.batcher.stats
            snap.counter("serve.tasks_submitted").inc(stats.tasks_submitted)
            snap.counter("serve.tasks_deduped").inc(stats.tasks_deduped)
            snap.counter("serve.tasks_failed").inc(stats.tasks_failed)
            snap.counter("serve.batches").inc(stats.batches)
            snap.counter("serve.pool_retries").inc(stats.retries)
            snap.counter("serve.checkpoint_hits").inc(stats.checkpoint_hits)
            snap.histogram("serve.batch_size").observe_many(stats.batch_sizes)
            snap.gauge("serve.inflight_tasks").set(self.batcher.inflight)
        metrics_from_cache(registry=snap, prefix="cache")
        if self.store_dir and self.store is not None:
            # A dedicated --store-dir has its own counters (the global
            # cache entry above covers the shared-root case).
            snap.counter("store.hits").inc(self.store.hits)
            snap.counter("store.misses").inc(self.store.misses)
            total = self.store.hits + self.store.misses
            snap.gauge("store.hit_rate").set(
                self.store.hits / total if total else 0.0
            )
        if self.peer_tier is not None:
            snap.gauge("serve.peers").set(len(self.peer_tier.membership))
            snap.gauge("serve.peers_down").set(len(self.peer_tier.down_peers()))
        snap.gauge("serve.retained_requests").set(len(self.requests))
        snap.gauge("serve.uptime_seconds").set(
            time.monotonic() - self._started_monotonic
        )
        return snap.as_dict()

    def _append_ledger(self) -> None:
        from repro.obs.perf import PerfLedger, PerfRecord, capture_context

        snapshot = self.metrics_snapshot()
        metrics: Dict[str, float] = {}
        for name, entry in snapshot.items():
            if entry["type"] in ("counter", "gauge"):
                metrics[name] = float(entry["value"])
            else:
                for key, value in entry.items():
                    if key != "type":
                        metrics[f"{name}.{key}"] = float(value)
        context = capture_context(
            engine=os.environ.get("NACHOS_ENGINE", "reference"),
            jobs=self.jobs,
            mode="daemon",
        )
        ledger = PerfLedger(self.ledger)
        fp = ledger.append(
            PerfRecord(source="serve-daemon", metrics=metrics, context=context)
        )
        if not self.quiet:
            print(f"[nachos-serve] ledger {ledger.path}: appended {fp}",
                  flush=True)


# ----------------------------------------------------------------------
# CLI entry point (`nachos-serve`, also `nachos-repro serve ...`)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="nachos-serve",
        description="Long-running NACHOS disambiguation service "
        "(submit/poll/result over HTTP or a unix socket).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8737,
        help="TCP port (0 = ephemeral; the chosen port is announced and "
        "written to --ready-file)",
    )
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a unix domain socket instead of TCP",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker-pool width per batch (default $NACHOS_JOBS or 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget (default $NACHOS_TIMEOUT or off)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="bounded retries per task (default $NACHOS_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--engine", choices=["reference", "fast", "fast-vector"], default=None,
        help="default engine mode (exported as $NACHOS_ENGINE so pool "
        "workers inherit it; per-request 'engine' overrides)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.01, metavar="SECONDS",
        help="micro-batching window: how long submissions accumulate "
        "before one pool dispatch (default 0.01)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32,
        help="max tasks per pool dispatch (default 32)",
    )
    parser.add_argument(
        "--retain", type=int, default=1024, metavar="N",
        help="completed request payloads kept for /result (LRU, default 1024)",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append a serve-daemon telemetry record to this perf ledger "
        "on graceful shutdown",
    )
    parser.add_argument(
        "--peers", default=None, metavar="SPEC",
        help="join a sharded cache ring: 'name=host:port[,name=host:port"
        "...]' (default $NACHOS_PEERS; names are the stable ring "
        "identities, POST /peers can replace the view live)",
    )
    parser.add_argument(
        "--peer-id", default=None, metavar="NAME",
        help="this daemon's ring identity (default $NACHOS_PEER_ID, else "
        "its host:port once bound — name it explicitly with ephemeral "
        "ports)",
    )
    parser.add_argument(
        "--hop-limit", type=int, default=None, metavar="N",
        help="peer-request forwarding budget (default $NACHOS_HOP_LIMIT "
        f"or {DEFAULT_HOP_LIMIT}; a cycle of skewed membership views "
        "terminates here instead of looping)",
    )
    parser.add_argument(
        "--store-dir", default=None, metavar="PATH",
        help="dedicated payload-store root for the sharded tier "
        "(default: the shared $NACHOS_CACHE_DIR result cache)",
    )
    parser.add_argument(
        "--peer-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-peer round-trip budget; a slower peer is marked down "
        "with seeded backoff and the request computes locally (default 5)",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write {pid, host, port, socket} JSON here once listening "
        "(harness handshake)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.engine is not None:
        os.environ["NACHOS_ENGINE"] = args.engine

    peer_spec = args.peers if args.peers is not None else os.environ.get(
        "NACHOS_PEERS"
    )
    try:
        peers = parse_peer_spec(peer_spec) if peer_spec else None
    except ValueError as exc:
        parser.error(str(exc))
    peer_id = args.peer_id or os.environ.get("NACHOS_PEER_ID") or None
    hop_limit = args.hop_limit
    if hop_limit is None:
        try:
            hop_limit = int(os.environ.get("NACHOS_HOP_LIMIT", ""))
        except ValueError:
            hop_limit = DEFAULT_HOP_LIMIT

    daemon = NachosServeDaemon(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        jobs=args.jobs,
        timeout=args.timeout,
        max_retries=args.max_retries,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        retain_results=args.retain,
        ledger=args.ledger,
        quiet=args.quiet,
        peers=peers,
        peer_id=peer_id,
        hop_limit=hop_limit,
        store_dir=args.store_dir,
        peer_timeout=args.peer_timeout,
    )

    async def _serve() -> None:
        await daemon.start()
        if args.ready_file:
            ready = {
                "pid": os.getpid(),
                "host": daemon.host,
                "port": daemon.port,
                "socket": daemon.socket_path,
                "address": daemon.address,
                "peer_id": daemon.peer_id,
            }
            # Atomic publish: a harness polling for this file must never
            # observe a torn JSON half-write (parallel CI boots many
            # daemons and reads these under load).
            tmp = f"{args.ready_file}.tmp-{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(ready, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, args.ready_file)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, daemon._stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass
        await daemon._stop_event.wait()
        await daemon.stop()

    asyncio.run(_serve())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
