"""Peer read-through for the sharded ``nachos-serve`` cache tier.

A fleet of daemons shares one *logical* result store: every task
fingerprint has exactly one ring owner (:mod:`repro.serve.hashring`),
and a daemon that misses its local store asks the owner
(``GET /peer/result/<fp>``) before paying for a computation.  The
:class:`PeerTier` is the client half of that protocol plus the health
bookkeeping that keeps a dead peer from stalling traffic:

* **Hop limit.**  Every peer request carries an ``X-Nachos-Hops``
  header.  A daemon answering a peer request may forward it once more
  toward the node *it* believes is the owner (membership views can skew
  during a rolling restart), but only while ``hops + 1 < hop_limit`` —
  so a forwarding cycle dies at the limit instead of looping.
* **Down marking with seeded backoff.**  A connect error or timeout
  marks the peer down until ``now + RetryPolicy.backoff(...)`` — the
  same deterministic capped-exponential schedule the supervised pool
  uses (:mod:`repro.runtime.retry`), keyed by peer name so the schedule
  is reproducible.  While a peer is down, lookups skip straight to
  local compute: the fleet degrades to independent daemons, never to
  errors.
* **Best-effort write-through.**  After computing a task it does not
  own, a daemon *offers* the payload to the owner
  (``PUT /peer/result/<fp>``).  Offers are fire-and-forget; losing one
  costs a future recompute, never correctness.

Peer membership is ``name -> host:port``.  Names (not addresses) hash
onto the ring, so a peer that restarts on a new ephemeral port keeps
its key prefix once the fleet learns the new address
(``POST /peers``).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.runtime.retry import RetryPolicy
from repro.serve.hashring import DEFAULT_VNODES, HashRing

#: Forwarding budget for one peer lookup.  2 = one skew-correcting
#: forward on top of the direct owner hop; never enough to loop.
DEFAULT_HOP_LIMIT = 2

#: Header carrying the hop count of a peer-protocol request.
HOPS_HEADER = "X-Nachos-Hops"

#: Per-connection budget for one peer round trip.  A peer slower than
#: this is treated as down — local compute is always an answer.
DEFAULT_FETCH_TIMEOUT = 5.0

#: Consecutive-failure count is capped here before feeding the backoff
#: exponent, so a long outage plateaus at ``backoff_max`` rather than
#: overflowing the schedule.
_MAX_BACKOFF_ATTEMPT = 8

_MAX_PEER_BODY = 1 << 22  # 4 MiB: payloads are small JSON dicts


class PeerProtocolError(RuntimeError):
    """A malformed response from a peer (treated as a miss + failure)."""


def parse_peer_spec(spec: str) -> Dict[str, str]:
    """Parse the ``--peers`` / ``NACHOS_PEERS`` grammar.

    ``name=host:port[,name=host:port...]`` — the name is the stable
    ring identity; without ``name=`` the address doubles as the name
    (fine for fixed-port fleets, wrong for ephemeral ports).
    """
    peers: Dict[str, str] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, eq, address = chunk.partition("=")
        if not eq:
            name, address = chunk, chunk
        name = name.strip()
        address = address.strip()
        if not name or not address:
            raise ValueError(f"bad peer entry {chunk!r} (want name=host:port)")
        split_address(address)  # validate eagerly
        if name in peers and peers[name] != address:
            raise ValueError(f"peer name {name!r} given twice with different addresses")
        peers[name] = address
    return peers


def split_address(address: str) -> Tuple[str, int]:
    """``host:port`` -> ``(host, port)``, validating the port."""
    host, colon, port_text = address.rpartition(":")
    if not colon or not host:
        raise ValueError(f"bad peer address {address!r} (want host:port)")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad peer port in {address!r}") from None
    if not 1 <= port <= 65535:
        raise ValueError(f"peer port out of range in {address!r}")
    return host, port


async def peer_http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    headers: Optional[Mapping[str, str]] = None,
    body: Optional[Mapping[str, Any]] = None,
    timeout: float = DEFAULT_FETCH_TIMEOUT,
) -> Tuple[int, Dict[str, Any]]:
    """One JSON-over-HTTP round trip on the event loop (no threads).

    Returns ``(status, payload)``.  Connect errors and timeouts raise
    (``OSError`` / ``asyncio.TimeoutError``); garbage responses raise
    :class:`PeerProtocolError`.
    """
    deadline = time.monotonic() + timeout

    def remaining() -> float:
        return max(0.01, deadline - time.monotonic())

    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), remaining()
    )
    try:
        data = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None
            else b""
        )
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
        ]
        for key, value in (headers or {}).items():
            lines.append(f"{key}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + data)
        await asyncio.wait_for(writer.drain(), remaining())

        status_line = await asyncio.wait_for(reader.readline(), remaining())
        parts = status_line.decode("latin-1", "replace").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise PeerProtocolError(f"bad status line {status_line!r}")
        status = int(parts[1])
        length = 0
        while True:
            raw = await asyncio.wait_for(reader.readline(), remaining())
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1", "replace").partition(":")
            if key.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise PeerProtocolError("bad peer Content-Length") from None
        if length < 0 or length > _MAX_PEER_BODY:
            raise PeerProtocolError(f"peer response too large ({length} bytes)")
        raw_body = (
            await asyncio.wait_for(reader.readexactly(length), remaining())
            if length
            else b"{}"
        )
        try:
            payload = json.loads(raw_body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise PeerProtocolError("peer response is not JSON") from None
        if not isinstance(payload, dict):
            raise PeerProtocolError("peer response is not a JSON object")
        return status, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


@dataclass
class _PeerHealth:
    """Consecutive failures + the backoff gate they imply."""

    failures: int = 0
    down_until: float = 0.0


@dataclass
class PeerFetch:
    """Outcome of one owner lookup (the daemon folds these into metrics)."""

    outcome: str                      # hit | miss | down | error | self
    payload: Optional[Dict[str, Any]] = None
    peer: Optional[str] = None
    elapsed: float = 0.0
    forwarded: bool = field(default=False)


class PeerTier:
    """Ring routing + health + the peer-protocol client for one daemon."""

    def __init__(
        self,
        self_name: str,
        membership: Mapping[str, str],
        vnodes: int = DEFAULT_VNODES,
        hop_limit: int = DEFAULT_HOP_LIMIT,
        fetch_timeout: float = DEFAULT_FETCH_TIMEOUT,
        policy: Optional[RetryPolicy] = None,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self.self_name = self_name
        self.vnodes = vnodes
        self.hop_limit = max(1, hop_limit)
        self.fetch_timeout = fetch_timeout
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self._time = time_fn
        self.membership: Dict[str, str] = {}
        self.ring = HashRing(vnodes=vnodes)
        self._health: Dict[str, _PeerHealth] = {}
        self.set_membership(membership)

    # -- membership -----------------------------------------------------
    def set_membership(self, membership: Mapping[str, str]) -> None:
        """Replace the fleet view (``name -> host:port``); self included."""
        peers = dict(membership)
        for name, address in peers.items():
            split_address(address)
        if self.self_name not in peers:
            raise ValueError(
                f"membership must include this daemon ({self.self_name!r}); "
                f"got {sorted(peers)}"
            )
        self.membership = peers
        self.ring = HashRing(peers, vnodes=self.vnodes)
        self._health = {
            name: self._health.get(name, _PeerHealth()) for name in peers
        }

    def owner(self, fingerprint: str) -> Optional[str]:
        return self.ring.owner(fingerprint)

    def address(self, name: str) -> str:
        return self.membership[name]

    # -- health ---------------------------------------------------------
    def is_down(self, name: str) -> bool:
        health = self._health.get(name)
        return health is not None and self._time() < health.down_until

    def mark_failure(self, name: str) -> float:
        """Record a failed round trip; returns the backoff applied."""
        health = self._health.setdefault(name, _PeerHealth())
        health.failures += 1
        delay = self.policy.backoff(
            f"peer-{name}", min(health.failures - 1, _MAX_BACKOFF_ATTEMPT)
        )
        health.down_until = self._time() + delay
        return delay

    def mark_success(self, name: str) -> None:
        self._health[name] = _PeerHealth()

    def down_peers(self) -> Tuple[str, ...]:
        return tuple(sorted(n for n in self.membership if self.is_down(n)))

    # -- peer protocol --------------------------------------------------
    async def fetch(self, fingerprint: str, hops: int = 0) -> PeerFetch:
        """Ask the ring owner for *fingerprint*'s payload.

        Never raises: connect errors and timeouts mark the peer down and
        come back as ``outcome="error"`` — the caller computes locally.
        """
        owner = self.owner(fingerprint)
        if owner is None or owner == self.self_name:
            return PeerFetch(outcome="self", peer=owner)
        if self.is_down(owner):
            return PeerFetch(outcome="down", peer=owner)
        host, port = split_address(self.membership[owner])
        started = time.perf_counter()
        try:
            status, payload = await peer_http_json(
                host,
                port,
                "GET",
                f"/peer/result/{fingerprint}",
                headers={HOPS_HEADER: str(hops)},
                timeout=self.fetch_timeout,
            )
        except (OSError, asyncio.TimeoutError, PeerProtocolError):
            self.mark_failure(owner)
            return PeerFetch(
                outcome="error",
                peer=owner,
                elapsed=time.perf_counter() - started,
            )
        elapsed = time.perf_counter() - started
        self.mark_success(owner)
        if status == 200 and isinstance(payload.get("payload"), dict):
            return PeerFetch(
                outcome="hit",
                payload=payload["payload"],
                peer=owner,
                elapsed=elapsed,
                forwarded=bool(payload.get("forwarded")),
            )
        return PeerFetch(outcome="miss", peer=owner, elapsed=elapsed)

    async def offer(self, fingerprint: str, payload: Mapping[str, Any]) -> bool:
        """Best-effort write-through of a computed payload to the owner."""
        owner = self.owner(fingerprint)
        if owner is None or owner == self.self_name or self.is_down(owner):
            return False
        host, port = split_address(self.membership[owner])
        try:
            status, _ = await peer_http_json(
                host,
                port,
                "PUT",
                f"/peer/result/{fingerprint}",
                body=dict(payload),
                timeout=self.fetch_timeout,
            )
        except (OSError, asyncio.TimeoutError, PeerProtocolError):
            self.mark_failure(owner)
            return False
        self.mark_success(owner)
        return status == 200

    # -- introspection --------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The ``GET /peers`` view of this daemon's fleet state."""
        return {
            "self": self.self_name,
            "peers": dict(sorted(self.membership.items())),
            "hop_limit": self.hop_limit,
            "vnodes": self.vnodes,
            "down": list(self.down_peers()),
        }
