"""Differential alias fuzzer over all five disambiguation backends.

Generates adversarial little regions — dense MAY graphs from symbolic
offsets, exact/partial overlap mixes, narrow-within-wide widths,
cache-line-straddling accesses, slow store values, late addresses — and
runs each one under every backend, checking both oracles:

* **value**: ``golden_execute(graph, envs).matches(...)`` (program-order
  hash-token execution), and
* **timing**: :func:`repro.verify.sanitizer.sanitize_trace` over the
  traced event stream.

and — when enabled — two *static* cross-checks that need no execution
at all:

* **alias oracle** (``oracle=True``): every stage-1..4 NO/MUST verdict
  is compared against the independent stage-5 separation-logic oracle
  (:func:`repro.compiler.aliasing.stage5.oracle_verdict`); a
  contradiction means a compiler stage is unsound.
* **sync coverage** (``coverage=True``): the compiled MDE set must
  cover every happens-before pair the oracle requires
  (:func:`repro.compiler.coverage.check_sync_coverage`).

Any failure is shrunk to a locally-minimal region (greedy delta
debugging over ops, invocations, and op attributes) and reported as a
:class:`FuzzFailure` that :mod:`repro.verify.reproduce` can serialize
into a standalone JSON repro.

Everything is deterministic in the seed: region *k* of ``--seed S`` is
``RegionSpec`` generated from ``random.Random(S * 1_000_003 + k)``;
symbol bounds come from an independent second stream so the op/env
streams of historical seeds are unchanged.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.compiler.aliasing.stage5 import OracleVerdict, oracle_verdict
from repro.compiler.coverage import CoverageGap, check_sync_coverage
from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.ir import AffineExpr, MemObject, RegionBuilder, Sym
from repro.memory import MemoryHierarchy
from repro.obs.tracer import Tracer
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    SerialMemBackend,
    SpecLSQBackend,
    golden_execute,
    make_engine,
)
from repro.verify.sanitizer import SanitizerReport, sanitize_trace

BACKENDS: Dict[str, Callable] = {
    "opt-lsq": OptLSQBackend,
    "spec-lsq": SpecLSQBackend,
    "serial-mem": SerialMemBackend,
    "nachos-sw": NachosSWBackend,
    "nachos": NachosBackend,
}
#: Systems whose compiled MDEs are part of the contract under test.
NEEDS_MDES = frozenset({"nachos-sw", "nachos"})

#: Offsets chosen to collide: exact duplicates, partial overlaps at
#: every width, and accesses straddling the 64-byte line boundary.
OFFSET_POOL = (0, 1, 2, 4, 6, 8, 12, 16, 56, 60, 62, 63, 64, 66, 72, 120, 124, 128)
WIDTHS = (1, 2, 4, 8)
SYM_VALUES = (0, 1, 2, 3, 4, 6, 8)


@dataclass(frozen=True)
class MemOpSpec:
    """One memory op of a fuzzed region."""

    is_store: bool
    offset: int            # constant byte offset (or base for symbolic)
    width: int
    sym: Optional[str] = None   # symbolic term name (None = constant addr)
    stride: int = 0             # coefficient of the symbolic term
    slow: int = 0               # fdiv-chain length delaying a store value
    late_addr: bool = False     # address arrival gated on a prior load
    value_from_load: bool = False  # store value derived from a prior load


@dataclass(frozen=True)
class RegionSpec:
    """A fuzzed region: ops + invocation environments, fully declarative.

    ``sym_bounds`` optionally declares an inclusive value range per
    symbol name (region-level, so every op sharing the symbol sees the
    same :class:`~repro.ir.address.Sym`).  Declared bounds must contain
    every environment's value for that symbol — they feed the stage-5
    checker, and a violated bound would make its verdicts wrong rather
    than the backends'.
    """

    name: str
    ops: Tuple[MemOpSpec, ...]
    envs: Tuple[Tuple[Tuple[str, int], ...], ...]  # sorted (key, value) pairs
    size: int = 4096
    sym_bounds: Tuple[Tuple[str, Tuple[int, int]], ...] = ()

    def env_dicts(self) -> List[Dict[str, int]]:
        return [dict(pairs) for pairs in self.envs]


@dataclass
class FuzzFailure:
    """One backend (or static checker) disagreeing with an oracle.

    Dynamic failures (a backend against the golden model / sanitizer /
    engine equivalence) have ``static_kind is None``.  Static failures
    carry ``system="static"``, ``static_kind`` in ``{"oracle",
    "coverage"}``, the located findings, and — for injected faults —
    the ``fault_seed`` that reproduces the flipped verdict.
    """

    spec: RegionSpec
    system: str
    oracle_ok: bool
    sanitizer: SanitizerReport
    shrunk_from: Optional[int] = None  # op count before shrinking
    engine_divergence: bool = False    # reference vs fast-mode results differ
    diverged_mode: Optional[str] = None  # which fast mode diverged
    static_kind: Optional[str] = None    # "oracle" | "coverage"
    static_findings: Tuple[str, ...] = ()
    fault_seed: Optional[int] = None     # seeded stage-fault that was injected

    def describe(self) -> str:
        parts = [f"{self.system} failed on {self.spec.name} "
                 f"({len(self.spec.ops)} mem ops, {len(self.spec.envs)} inv)"]
        if self.static_kind == "oracle":
            parts.append("  stage verdict contradicts the separation-logic "
                         "oracle" + (f" [injected fault seed {self.fault_seed}]"
                                     if self.fault_seed is not None else ""))
        elif self.static_kind == "coverage":
            parts.append("  compiled MDE set leaves oracle-required "
                         "happens-before pairs uncovered")
        for finding in self.static_findings[:5]:
            parts.append(f"  {finding}")
        if self.engine_divergence:
            mode = self.diverged_mode or "fast"
            parts.append(f"  engine divergence: reference and {mode!r} "
                         "modes produced different SimResults")
        if self.static_kind is None and not self.oracle_ok:
            parts.append("  golden-model mismatch (wrong load value or "
                         "final memory image)")
        if not self.sanitizer.ok:
            for v in self.sanitizer.violations[:5]:
                parts.append(f"  {v}")
        if self.shrunk_from is not None:
            parts.append(f"  (shrunk from {self.shrunk_from} ops)")
        return "\n".join(parts)


@dataclass
class FuzzResult:
    """Outcome of a fuzzing campaign."""

    regions: int = 0
    runs: int = 0
    static_checks: int = 0  # regions also cross-checked statically
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def generate_spec(seed: int, index: int) -> RegionSpec:
    """Region *index* of campaign *seed* (deterministic)."""
    rng = random.Random(seed * 1_000_003 + index)
    n_ops = rng.randint(3, 8)
    ops: List[MemOpSpec] = []
    syms: List[str] = []
    for i in range(n_ops):
        is_store = rng.random() < 0.55
        width = rng.choice(WIDTHS)
        mode = rng.random()
        if mode < 0.3 and ops:
            # Exact collision: clone an earlier op's address so MUST
            # pairs (and FORWARD edges) form; this is what arms the
            # forward-chain patterns.
            prev = rng.choice(ops)
            spec = MemOpSpec(
                is_store=is_store,
                offset=prev.offset,
                width=prev.width,
                sym=prev.sym,
                stride=prev.stride,
            )
        elif mode < 0.55 and (syms or rng.random() < 0.7):
            # Symbolic offset: reuse a sym for dense MAY graphs, or mint
            # a fresh one.
            if syms and rng.random() < 0.6:
                sym = rng.choice(syms)
            else:
                sym = f"s{len(syms)}"
                syms.append(sym)
            spec = MemOpSpec(
                is_store=is_store,
                offset=rng.choice((0, 4, 8, 56, 60)),
                width=width,
                sym=sym,
                stride=rng.choice((1, 2, 4, 8)),
            )
        else:
            spec = MemOpSpec(
                is_store=is_store,
                offset=rng.choice(OFFSET_POOL),
                width=width,
            )
        if is_store and rng.random() < 0.4:
            spec = replace(spec, slow=rng.randint(2, 6))
        if is_store and rng.random() < 0.35:
            # Forward-chain pressure: a store whose value rides on a
            # prior load couples that load's (possibly forwarded)
            # completion into this store's issue time.
            spec = replace(spec, value_from_load=True)
        if rng.random() < 0.2:
            spec = replace(spec, late_addr=True)
        ops.append(spec)
    if not any(o.is_store for o in ops):
        ops[rng.randrange(len(ops))] = replace(ops[0], is_store=True)

    n_inv = rng.choice((1, 1, 2, 3))
    envs = []
    for _ in range(n_inv):
        env = {"x": rng.randrange(1, 1 << 16)}
        for s in syms:
            env[s] = rng.choice(SYM_VALUES)
        envs.append(tuple(sorted(env.items())))
    # Symbol bounds come from an independent stream so the op/env streams
    # above stay byte-identical for historical seeds.  Half the symbols
    # get the tight (and true: SYM_VALUES ⊆ [0, 8]) declared range, which
    # arms the stage-5 enumeration and interval paths.
    rng_bounds = random.Random(seed * 1_000_003 + index + 987_654_321)
    sym_bounds = tuple(
        (s, (0, max(SYM_VALUES))) for s in syms if rng_bounds.random() < 0.5
    )
    return RegionSpec(
        name=f"fuzz-{seed}-{index}",
        ops=ops_tuple(ops),
        envs=tuple(envs),
        sym_bounds=sym_bounds,
    )


def ops_tuple(ops: Sequence[MemOpSpec]) -> Tuple[MemOpSpec, ...]:
    return tuple(ops)


def build_graph(spec: RegionSpec):
    """Materialize a RegionSpec as a fresh DFGraph (no MDEs installed)."""
    obj = MemObject("a", spec.size, base_addr=0x1000)
    b = RegionBuilder(spec.name)
    x = b.input("x")
    # One canonical Sym per name: bounds live on the Sym, and AffineExpr
    # cancellation needs every op sharing a name to share the object.
    bounds = dict(spec.sym_bounds)
    sym_objs: Dict[str, Sym] = {}

    def sym_of(name: str) -> Sym:
        if name not in sym_objs:
            lo, hi = bounds.get(name, (None, None))
            sym_objs[name] = Sym(name, lo=lo, hi=hi)
        return sym_objs[name]

    last_load = None
    for i, m in enumerate(spec.ops):
        if m.sym is not None:
            expr = AffineExpr.of(const=m.offset, syms={sym_of(m.sym): m.stride})
        else:
            expr = AffineExpr.constant(m.offset)
        inputs: List = []
        if m.late_addr and last_load is not None:
            inputs = [b.gep(last_load)]
        if m.is_store:
            base_v = last_load if (m.value_from_load and last_load is not None) else x
            v = b.add(base_v, b.const(i + 1))
            for _ in range(m.slow):
                v = b.fdiv(v, x)
            b.store(obj, expr, value=v, width=m.width, inputs=inputs)
        else:
            last_load = b.load(obj, expr, width=m.width, inputs=inputs)
    return b.build()


# ----------------------------------------------------------------------
# Differential execution
# ----------------------------------------------------------------------
def run_spec(
    spec: RegionSpec, system: str
) -> Tuple[bool, SanitizerReport]:
    """Run one region under one backend; return (oracle_ok, sanitizer)."""
    graph = build_graph(spec)
    if system in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    tracer = Tracer()
    engine = DataflowEngine(
        graph,
        place_region(graph),
        MemoryHierarchy(),
        BACKENDS[system](),
        tracer=tracer,
    )
    envs = spec.env_dicts()
    result = engine.run(envs)
    golden = golden_execute(graph, envs)
    oracle_ok = golden.matches(result.load_values, result.memory_image)
    report = sanitize_trace(
        tracer.events, graph, system, region=spec.name
    )
    return oracle_ok, report


def run_spec_result(spec: RegionSpec, system: str, mode: str) -> bytes:
    """Run one region untraced under *mode*; return the pickled SimResult.

    The engine-equivalence contract is byte-identity of the pickled
    :class:`~repro.sim.result.SimResult`, so this returns the bytes
    directly — comparing them compares every field (cycles, load
    values, memory image, energy counts, cache stats, ...) at once.
    """
    graph = build_graph(spec)
    if system in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    engine = make_engine(
        graph,
        place_region(graph),
        MemoryHierarchy(),
        BACKENDS[system](),
        mode=mode,
    )
    return pickle.dumps(engine.run(spec.env_dicts()))


#: Fast engine modes cross-checked per ``engines`` selection.
_ENGINES_UNDER_TEST = {
    "reference": (),
    "both": ("fast",),
    "all": ("fast", "fast-vector"),
}


def _modes_diverge(spec: RegionSpec, system: str, mode: str = "fast") -> bool:
    """Shrink predicate: do reference and *mode* disagree on *spec*?"""
    try:
        ref = run_spec_result(spec, system, "reference")
        fast = run_spec_result(spec, system, mode)
    except Exception:
        return False  # a repro must diverge, not crash elsewhere
    return ref != fast


def _first_diverging_mode(
    spec: RegionSpec, system: str, engines: str
) -> Optional[str]:
    """The first fast mode whose SimResult differs from reference's."""
    modes = _ENGINES_UNDER_TEST[engines]
    if not modes:
        return None
    ref = run_spec_result(spec, system, "reference")
    for mode in modes:
        if run_spec_result(spec, system, mode) != ref:
            return mode
    return None


def check_spec(
    spec: RegionSpec,
    systems: Sequence[str],
    engines: str = "reference",
) -> List[FuzzFailure]:
    failures = []
    for system in systems:
        oracle_ok, report = run_spec(spec, system)
        if not oracle_ok or not report.ok:
            failures.append(FuzzFailure(spec, system, oracle_ok, report))
            continue
        diverged = _first_diverging_mode(spec, system, engines)
        if diverged is not None:
            failures.append(
                FuzzFailure(
                    spec,
                    system,
                    oracle_ok,
                    report,
                    engine_divergence=True,
                    diverged_mode=diverged,
                )
            )
    return failures


# ----------------------------------------------------------------------
# Static cross-checks: stage verdicts vs the oracle, MDE sync coverage
# ----------------------------------------------------------------------
def _op_desc(graph, op_id: int) -> str:
    op = graph.op(op_id)
    kind = "ld" if op.is_load else "st"
    name = op.name or f"op{op_id}"
    return f"{kind}#{op_id}({name}) {op.addr!r}"


@dataclass(frozen=True)
class StaticContradiction:
    """A stage-1..4 NO/MUST verdict the separation-logic oracle refutes.

    The oracle is at least as precise as stages 1--4 (same TBAA axiom,
    heaplets subsuming stage-2 provenance, the same enumeration budget),
    so on a sound compiler no contradiction can fire: a stage ``NO``
    with the oracle proving overlap possible, or a stage ``MUST`` with
    the oracle proving disjointness possible, means the *stage* is
    wrong.
    """

    stage: str
    older: int
    younger: int
    stage_label: AliasLabel
    oracle: OracleVerdict
    older_desc: str
    younger_desc: str

    def __str__(self) -> str:
        if self.stage_label is AliasLabel.NO:
            why = "the oracle proves the pair can overlap"
        else:
            why = "the oracle proves the pair can be disjoint"
        return (
            f"{self.stage} labeled {self.stage_label.value.upper()} but {why}: "
            f"{self.older_desc} vs {self.younger_desc} "
            f"[oracle: {self.oracle.label.value.upper()} "
            f"via {self.oracle.decided_by}]"
        )


def _stage_matrices(result) -> List[Tuple[str, AliasMatrix]]:
    """The stage-1..4 matrices of one compilation, in refinement order."""
    out: List[Tuple[str, AliasMatrix]] = [("stage 1", result.stage1)]
    if result.stage2 is not None:
        out.append(("stage 2", result.stage2))
    if result.stage4 is not None:
        out.append(("stage 4", result.stage4))
    return out


def _eligible_fault_pairs(graph, matrix: AliasMatrix) -> List[Tuple[int, int]]:
    """MAY pairs the oracle *knows* can overlap.

    Flipping one of these to NO is a guaranteed-detectable unsoundness:
    the injected fault contradicts positive oracle knowledge, never a
    both-sides-uncertain stalemate.
    """
    out: List[Tuple[int, int]] = []
    for older, younger in matrix.pairs(AliasLabel.MAY):
        v = oracle_verdict(graph, older, younger)
        if v.label is AliasLabel.MUST or v.can_overlap is True:
            out.append((older, younger))
    return out


def crosscheck_stages(
    spec: RegionSpec, fault_seed: Optional[int] = None
) -> List[StaticContradiction]:
    """Cross-check every stage-1..4 NO/MUST verdict against the oracle.

    With ``fault_seed`` set, one eligible MAY pair of the final
    stage-1..4 matrix is flipped to NO *in a copy, at check time* — the
    executed enforcement is untouched — which must surface as a
    contradiction whenever the region has an eligible pair at all.
    """
    graph = build_graph(spec)
    result = compile_region(graph)
    matrices = _stage_matrices(result)
    if fault_seed is not None:
        faulted = result.pre_stage5_labels.copy()
        eligible = _eligible_fault_pairs(graph, faulted)
        if eligible:
            older, younger = eligible[fault_seed % len(eligible)]
            faulted.set(older, younger, AliasLabel.NO)
            matrices.append(("injected stage fault", faulted))
    cache: Dict[Tuple[int, int], OracleVerdict] = {}
    contradictions: List[StaticContradiction] = []
    for stage_name, matrix in matrices:
        for (older, younger), label in matrix:
            if label is AliasLabel.MAY:
                continue  # MAY can never contradict the oracle
            verdict = cache.get((older, younger))
            if verdict is None:
                verdict = oracle_verdict(graph, older, younger)
                cache[(older, younger)] = verdict
            unsound_no = label is AliasLabel.NO and (
                verdict.label is AliasLabel.MUST or verdict.can_overlap is True
            )
            unsound_must = label is AliasLabel.MUST and (
                verdict.label is AliasLabel.NO or verdict.always_overlaps is False
            )
            if unsound_no or unsound_must:
                contradictions.append(
                    StaticContradiction(
                        stage=stage_name,
                        older=older,
                        younger=younger,
                        stage_label=label,
                        oracle=verdict,
                        older_desc=_op_desc(graph, older),
                        younger_desc=_op_desc(graph, younger),
                    )
                )
    return contradictions


def coverage_gaps_spec(spec: RegionSpec) -> List[CoverageGap]:
    """Compile *spec* and sync-coverage-check the installed MDE set."""
    graph = build_graph(spec)
    compile_region(graph)
    return list(check_sync_coverage(graph).gaps)


def _static_oracle_fails(
    fault_seed: Optional[int],
) -> Callable[[RegionSpec, str], bool]:
    """Shrink predicate factory for oracle contradictions."""

    def fails(spec: RegionSpec, system: str) -> bool:
        try:
            return bool(crosscheck_stages(spec, fault_seed=fault_seed))
        except Exception:
            return False  # a repro must contradict, not crash elsewhere
    return fails


def _static_coverage_fails(spec: RegionSpec, system: str) -> bool:
    """Shrink predicate: does *spec* still have a coverage gap?"""
    try:
        return bool(coverage_gaps_spec(spec))
    except Exception:
        return False


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _still_fails(spec: RegionSpec, system: str) -> bool:
    try:
        oracle_ok, report = run_spec(spec, system)
    except Exception:
        return False  # a repro must fail the oracles, not crash elsewhere
    return not oracle_ok or not report.ok


def shrink(
    spec: RegionSpec,
    system: str,
    fails: Optional[Callable[[RegionSpec, str], bool]] = None,
) -> RegionSpec:
    """Greedy delta-debugging to a locally-minimal failing region.

    ``fails`` defaults to the differential check (:func:`run_spec` with
    the golden oracle and sanitizer); tests may supply their own
    predicate to exercise the shrink loop in isolation.
    """
    if fails is None:
        fails = _still_fails
    current = spec
    changed = True
    while changed:
        changed = False
        # Drop whole memory ops.
        for i in range(len(current.ops)):
            if len(current.ops) <= 2:
                break
            cand = replace(
                current, ops=current.ops[:i] + current.ops[i + 1:]
            )
            if fails(cand, system):
                current, changed = cand, True
                break
        if changed:
            continue
        # Truncate invocations.
        if len(current.envs) > 1:
            cand = replace(current, envs=current.envs[:1])
            if fails(cand, system):
                current, changed = cand, True
                continue
        # Simplify op attributes: drop slow chains, late addresses,
        # symbolic terms (freezing them at their first env value).
        env0 = dict(current.envs[0]) if current.envs else {}
        for i, m in enumerate(current.ops):
            cands = []
            if m.slow:
                cands.append(replace(m, slow=0))
            if m.late_addr:
                cands.append(replace(m, late_addr=False))
            if m.value_from_load:
                cands.append(replace(m, value_from_load=False))
            if m.sym is not None:
                frozen = m.offset + m.stride * env0.get(m.sym, 0)
                cands.append(replace(m, sym=None, stride=0, offset=frozen))
            for cand_op in cands:
                cand = replace(
                    current,
                    ops=current.ops[:i] + (cand_op,) + current.ops[i + 1:],
                )
                if fails(cand, system):
                    current, changed = cand, True
                    break
            if changed:
                break
    return current


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def fuzz(
    count: int,
    seed: int = 0,
    systems: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    shrink_failures: bool = True,
    max_failures: int = 5,
    engines: str = "reference",
    oracle: bool = False,
    coverage: bool = False,
    fault_seed: Optional[int] = None,
) -> FuzzResult:
    """Run *count* regions through the differential harness.

    ``engines="both"`` additionally cross-checks every clean
    (spec, system) pair between the reference and fast execution
    engines — ``engines="all"`` adds fast-vector for a three-way
    check — and the pickled SimResults must be byte-identical.  A
    divergence is reported (and shrunk) like any other failure, with
    :attr:`FuzzFailure.engine_divergence` set and
    :attr:`FuzzFailure.diverged_mode` naming the mode that broke.

    ``oracle=True`` cross-checks every stage-1..4 NO/MUST verdict of
    every region against the separation-logic oracle;
    ``coverage=True`` sync-coverage-checks each region's installed MDE
    set.  Both are static — no extra executions.  ``fault_seed``
    (requires ``oracle``) flips one oracle-refutable MAY verdict to NO
    per region at check time, exercising the detection path end to end;
    regions with no refutable pair pass through unchanged.
    """
    systems = list(systems) if systems else sorted(BACKENDS)
    for s in systems:
        if s not in BACKENDS:
            raise ValueError(
                f"unknown system {s!r}; expected one of {sorted(BACKENDS)}"
            )
    if engines not in _ENGINES_UNDER_TEST:
        raise ValueError(
            f"unknown engines selection {engines!r}; "
            f"expected one of {sorted(_ENGINES_UNDER_TEST)}"
        )
    if fault_seed is not None and not oracle:
        raise ValueError("fault_seed requires oracle=True")
    result = FuzzResult()
    runs_per_pair = 1 + len(_ENGINES_UNDER_TEST[engines])
    for k in range(count):
        if progress is not None:
            progress(k, count)
        spec = generate_spec(seed, k)
        result.regions += 1
        result.runs += len(systems) * runs_per_pair
        if oracle or coverage:
            result.static_checks += 1
            static_failures: List[FuzzFailure] = []
            if oracle:
                contras = crosscheck_stages(spec, fault_seed=fault_seed)
                if contras:
                    static_failures.append(
                        FuzzFailure(
                            spec,
                            "static",
                            True,
                            SanitizerReport(backend="static", region=spec.name),
                            static_kind="oracle",
                            static_findings=tuple(str(c) for c in contras),
                            fault_seed=fault_seed,
                        )
                    )
            if coverage:
                gaps = coverage_gaps_spec(spec)
                if gaps:
                    static_failures.append(
                        FuzzFailure(
                            spec,
                            "static",
                            True,
                            SanitizerReport(backend="static", region=spec.name),
                            static_kind="coverage",
                            static_findings=tuple(str(g) for g in gaps),
                        )
                    )
            for failure in static_failures:
                if shrink_failures:
                    n_before = len(failure.spec.ops)
                    if failure.static_kind == "oracle":
                        small = shrink(
                            failure.spec,
                            "static",
                            fails=_static_oracle_fails(fault_seed),
                        )
                        findings = tuple(
                            str(c)
                            for c in crosscheck_stages(small, fault_seed=fault_seed)
                        )
                    else:
                        small = shrink(
                            failure.spec, "static", fails=_static_coverage_fails
                        )
                        findings = tuple(str(g) for g in coverage_gaps_spec(small))
                    failure = replace(
                        failure,
                        spec=small,
                        shrunk_from=n_before,
                        static_findings=findings,
                    )
                result.failures.append(failure)
                if len(result.failures) >= max_failures:
                    return result
        for failure in check_spec(spec, systems, engines=engines):
            if shrink_failures and failure.engine_divergence:
                n_before = len(failure.spec.ops)
                mode = failure.diverged_mode or "fast"
                small = shrink(
                    failure.spec,
                    failure.system,
                    fails=lambda sp, sy: _modes_diverge(sp, sy, mode),
                )
                failure = FuzzFailure(
                    small, failure.system, failure.oracle_ok,
                    failure.sanitizer, shrunk_from=n_before,
                    engine_divergence=True,
                    diverged_mode=mode,
                )
            elif shrink_failures:
                n_before = len(failure.spec.ops)
                small = shrink(failure.spec, failure.system)
                oracle_ok, report = run_spec(small, failure.system)
                failure = FuzzFailure(
                    small, failure.system, oracle_ok, report,
                    shrunk_from=n_before,
                )
            result.failures.append(failure)
            if len(result.failures) >= max_failures:
                return result
    return result
