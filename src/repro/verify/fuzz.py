"""Differential alias fuzzer over all five disambiguation backends.

Generates adversarial little regions — dense MAY graphs from symbolic
offsets, exact/partial overlap mixes, narrow-within-wide widths,
cache-line-straddling accesses, slow store values, late addresses — and
runs each one under every backend, checking both oracles:

* **value**: ``golden_execute(graph, envs).matches(...)`` (program-order
  hash-token execution), and
* **timing**: :func:`repro.verify.sanitizer.sanitize_trace` over the
  traced event stream.

Any failure is shrunk to a locally-minimal region (greedy delta
debugging over ops, invocations, and op attributes) and reported as a
:class:`FuzzFailure` that :mod:`repro.verify.reproduce` can serialize
into a standalone JSON repro.

Everything is deterministic in the seed: region *k* of ``--seed S`` is
``RegionSpec`` generated from ``random.Random(S * 1_000_003 + k)``.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cgra.placement import place_region
from repro.compiler import compile_region
from repro.ir import AffineExpr, MemObject, RegionBuilder, Sym
from repro.memory import MemoryHierarchy
from repro.obs.tracer import Tracer
from repro.sim import (
    DataflowEngine,
    NachosBackend,
    NachosSWBackend,
    OptLSQBackend,
    SerialMemBackend,
    SpecLSQBackend,
    golden_execute,
    make_engine,
)
from repro.verify.sanitizer import SanitizerReport, sanitize_trace

BACKENDS: Dict[str, Callable] = {
    "opt-lsq": OptLSQBackend,
    "spec-lsq": SpecLSQBackend,
    "serial-mem": SerialMemBackend,
    "nachos-sw": NachosSWBackend,
    "nachos": NachosBackend,
}
#: Systems whose compiled MDEs are part of the contract under test.
NEEDS_MDES = frozenset({"nachos-sw", "nachos"})

#: Offsets chosen to collide: exact duplicates, partial overlaps at
#: every width, and accesses straddling the 64-byte line boundary.
OFFSET_POOL = (0, 1, 2, 4, 6, 8, 12, 16, 56, 60, 62, 63, 64, 66, 72, 120, 124, 128)
WIDTHS = (1, 2, 4, 8)
SYM_VALUES = (0, 1, 2, 3, 4, 6, 8)


@dataclass(frozen=True)
class MemOpSpec:
    """One memory op of a fuzzed region."""

    is_store: bool
    offset: int            # constant byte offset (or base for symbolic)
    width: int
    sym: Optional[str] = None   # symbolic term name (None = constant addr)
    stride: int = 0             # coefficient of the symbolic term
    slow: int = 0               # fdiv-chain length delaying a store value
    late_addr: bool = False     # address arrival gated on a prior load
    value_from_load: bool = False  # store value derived from a prior load


@dataclass(frozen=True)
class RegionSpec:
    """A fuzzed region: ops + invocation environments, fully declarative."""

    name: str
    ops: Tuple[MemOpSpec, ...]
    envs: Tuple[Tuple[Tuple[str, int], ...], ...]  # sorted (key, value) pairs
    size: int = 4096

    def env_dicts(self) -> List[Dict[str, int]]:
        return [dict(pairs) for pairs in self.envs]


@dataclass
class FuzzFailure:
    """One backend disagreeing with an oracle on one region."""

    spec: RegionSpec
    system: str
    oracle_ok: bool
    sanitizer: SanitizerReport
    shrunk_from: Optional[int] = None  # op count before shrinking
    engine_divergence: bool = False    # reference vs fast-mode results differ
    diverged_mode: Optional[str] = None  # which fast mode diverged

    def describe(self) -> str:
        parts = [f"{self.system} failed on {self.spec.name} "
                 f"({len(self.spec.ops)} mem ops, {len(self.spec.envs)} inv)"]
        if self.engine_divergence:
            mode = self.diverged_mode or "fast"
            parts.append(f"  engine divergence: reference and {mode!r} "
                         "modes produced different SimResults")
        if not self.oracle_ok:
            parts.append("  golden-model mismatch (wrong load value or "
                         "final memory image)")
        if not self.sanitizer.ok:
            for v in self.sanitizer.violations[:5]:
                parts.append(f"  {v}")
        if self.shrunk_from is not None:
            parts.append(f"  (shrunk from {self.shrunk_from} ops)")
        return "\n".join(parts)


@dataclass
class FuzzResult:
    """Outcome of a fuzzing campaign."""

    regions: int = 0
    runs: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def generate_spec(seed: int, index: int) -> RegionSpec:
    """Region *index* of campaign *seed* (deterministic)."""
    rng = random.Random(seed * 1_000_003 + index)
    n_ops = rng.randint(3, 8)
    ops: List[MemOpSpec] = []
    syms: List[str] = []
    for i in range(n_ops):
        is_store = rng.random() < 0.55
        width = rng.choice(WIDTHS)
        mode = rng.random()
        if mode < 0.3 and ops:
            # Exact collision: clone an earlier op's address so MUST
            # pairs (and FORWARD edges) form; this is what arms the
            # forward-chain patterns.
            prev = rng.choice(ops)
            spec = MemOpSpec(
                is_store=is_store,
                offset=prev.offset,
                width=prev.width,
                sym=prev.sym,
                stride=prev.stride,
            )
        elif mode < 0.55 and (syms or rng.random() < 0.7):
            # Symbolic offset: reuse a sym for dense MAY graphs, or mint
            # a fresh one.
            if syms and rng.random() < 0.6:
                sym = rng.choice(syms)
            else:
                sym = f"s{len(syms)}"
                syms.append(sym)
            spec = MemOpSpec(
                is_store=is_store,
                offset=rng.choice((0, 4, 8, 56, 60)),
                width=width,
                sym=sym,
                stride=rng.choice((1, 2, 4, 8)),
            )
        else:
            spec = MemOpSpec(
                is_store=is_store,
                offset=rng.choice(OFFSET_POOL),
                width=width,
            )
        if is_store and rng.random() < 0.4:
            spec = replace(spec, slow=rng.randint(2, 6))
        if is_store and rng.random() < 0.35:
            # Forward-chain pressure: a store whose value rides on a
            # prior load couples that load's (possibly forwarded)
            # completion into this store's issue time.
            spec = replace(spec, value_from_load=True)
        if rng.random() < 0.2:
            spec = replace(spec, late_addr=True)
        ops.append(spec)
    if not any(o.is_store for o in ops):
        ops[rng.randrange(len(ops))] = replace(ops[0], is_store=True)

    n_inv = rng.choice((1, 1, 2, 3))
    envs = []
    for _ in range(n_inv):
        env = {"x": rng.randrange(1, 1 << 16)}
        for s in syms:
            env[s] = rng.choice(SYM_VALUES)
        envs.append(tuple(sorted(env.items())))
    return RegionSpec(name=f"fuzz-{seed}-{index}", ops=ops_tuple(ops), envs=tuple(envs))


def ops_tuple(ops: Sequence[MemOpSpec]) -> Tuple[MemOpSpec, ...]:
    return tuple(ops)


def build_graph(spec: RegionSpec):
    """Materialize a RegionSpec as a fresh DFGraph (no MDEs installed)."""
    obj = MemObject("a", spec.size, base_addr=0x1000)
    b = RegionBuilder(spec.name)
    x = b.input("x")
    last_load = None
    for i, m in enumerate(spec.ops):
        if m.sym is not None:
            expr = AffineExpr.of(const=m.offset, syms={Sym(m.sym): m.stride})
        else:
            expr = AffineExpr.constant(m.offset)
        inputs: List = []
        if m.late_addr and last_load is not None:
            inputs = [b.gep(last_load)]
        if m.is_store:
            base_v = last_load if (m.value_from_load and last_load is not None) else x
            v = b.add(base_v, b.const(i + 1))
            for _ in range(m.slow):
                v = b.fdiv(v, x)
            b.store(obj, expr, value=v, width=m.width, inputs=inputs)
        else:
            last_load = b.load(obj, expr, width=m.width, inputs=inputs)
    return b.build()


# ----------------------------------------------------------------------
# Differential execution
# ----------------------------------------------------------------------
def run_spec(
    spec: RegionSpec, system: str
) -> Tuple[bool, SanitizerReport]:
    """Run one region under one backend; return (oracle_ok, sanitizer)."""
    graph = build_graph(spec)
    if system in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    tracer = Tracer()
    engine = DataflowEngine(
        graph,
        place_region(graph),
        MemoryHierarchy(),
        BACKENDS[system](),
        tracer=tracer,
    )
    envs = spec.env_dicts()
    result = engine.run(envs)
    golden = golden_execute(graph, envs)
    oracle_ok = golden.matches(result.load_values, result.memory_image)
    report = sanitize_trace(
        tracer.events, graph, system, region=spec.name
    )
    return oracle_ok, report


def run_spec_result(spec: RegionSpec, system: str, mode: str) -> bytes:
    """Run one region untraced under *mode*; return the pickled SimResult.

    The engine-equivalence contract is byte-identity of the pickled
    :class:`~repro.sim.result.SimResult`, so this returns the bytes
    directly — comparing them compares every field (cycles, load
    values, memory image, energy counts, cache stats, ...) at once.
    """
    graph = build_graph(spec)
    if system in NEEDS_MDES:
        compile_region(graph)
    else:
        graph.clear_mdes()
    engine = make_engine(
        graph,
        place_region(graph),
        MemoryHierarchy(),
        BACKENDS[system](),
        mode=mode,
    )
    return pickle.dumps(engine.run(spec.env_dicts()))


#: Fast engine modes cross-checked per ``engines`` selection.
_ENGINES_UNDER_TEST = {
    "reference": (),
    "both": ("fast",),
    "all": ("fast", "fast-vector"),
}


def _modes_diverge(spec: RegionSpec, system: str, mode: str = "fast") -> bool:
    """Shrink predicate: do reference and *mode* disagree on *spec*?"""
    try:
        ref = run_spec_result(spec, system, "reference")
        fast = run_spec_result(spec, system, mode)
    except Exception:
        return False  # a repro must diverge, not crash elsewhere
    return ref != fast


def _first_diverging_mode(
    spec: RegionSpec, system: str, engines: str
) -> Optional[str]:
    """The first fast mode whose SimResult differs from reference's."""
    modes = _ENGINES_UNDER_TEST[engines]
    if not modes:
        return None
    ref = run_spec_result(spec, system, "reference")
    for mode in modes:
        if run_spec_result(spec, system, mode) != ref:
            return mode
    return None


def check_spec(
    spec: RegionSpec,
    systems: Sequence[str],
    engines: str = "reference",
) -> List[FuzzFailure]:
    failures = []
    for system in systems:
        oracle_ok, report = run_spec(spec, system)
        if not oracle_ok or not report.ok:
            failures.append(FuzzFailure(spec, system, oracle_ok, report))
            continue
        diverged = _first_diverging_mode(spec, system, engines)
        if diverged is not None:
            failures.append(
                FuzzFailure(
                    spec,
                    system,
                    oracle_ok,
                    report,
                    engine_divergence=True,
                    diverged_mode=diverged,
                )
            )
    return failures


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _still_fails(spec: RegionSpec, system: str) -> bool:
    try:
        oracle_ok, report = run_spec(spec, system)
    except Exception:
        return False  # a repro must fail the oracles, not crash elsewhere
    return not oracle_ok or not report.ok


def shrink(
    spec: RegionSpec,
    system: str,
    fails: Optional[Callable[[RegionSpec, str], bool]] = None,
) -> RegionSpec:
    """Greedy delta-debugging to a locally-minimal failing region.

    ``fails`` defaults to the differential check (:func:`run_spec` with
    the golden oracle and sanitizer); tests may supply their own
    predicate to exercise the shrink loop in isolation.
    """
    if fails is None:
        fails = _still_fails
    current = spec
    changed = True
    while changed:
        changed = False
        # Drop whole memory ops.
        for i in range(len(current.ops)):
            if len(current.ops) <= 2:
                break
            cand = replace(
                current, ops=current.ops[:i] + current.ops[i + 1:]
            )
            if fails(cand, system):
                current, changed = cand, True
                break
        if changed:
            continue
        # Truncate invocations.
        if len(current.envs) > 1:
            cand = replace(current, envs=current.envs[:1])
            if fails(cand, system):
                current, changed = cand, True
                continue
        # Simplify op attributes: drop slow chains, late addresses,
        # symbolic terms (freezing them at their first env value).
        env0 = dict(current.envs[0]) if current.envs else {}
        for i, m in enumerate(current.ops):
            cands = []
            if m.slow:
                cands.append(replace(m, slow=0))
            if m.late_addr:
                cands.append(replace(m, late_addr=False))
            if m.value_from_load:
                cands.append(replace(m, value_from_load=False))
            if m.sym is not None:
                frozen = m.offset + m.stride * env0.get(m.sym, 0)
                cands.append(replace(m, sym=None, stride=0, offset=frozen))
            for cand_op in cands:
                cand = replace(
                    current,
                    ops=current.ops[:i] + (cand_op,) + current.ops[i + 1:],
                )
                if fails(cand, system):
                    current, changed = cand, True
                    break
            if changed:
                break
    return current


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------
def fuzz(
    count: int,
    seed: int = 0,
    systems: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    shrink_failures: bool = True,
    max_failures: int = 5,
    engines: str = "reference",
) -> FuzzResult:
    """Run *count* regions through the differential harness.

    ``engines="both"`` additionally cross-checks every clean
    (spec, system) pair between the reference and fast execution
    engines — ``engines="all"`` adds fast-vector for a three-way
    check — and the pickled SimResults must be byte-identical.  A
    divergence is reported (and shrunk) like any other failure, with
    :attr:`FuzzFailure.engine_divergence` set and
    :attr:`FuzzFailure.diverged_mode` naming the mode that broke.
    """
    systems = list(systems) if systems else sorted(BACKENDS)
    for s in systems:
        if s not in BACKENDS:
            raise ValueError(
                f"unknown system {s!r}; expected one of {sorted(BACKENDS)}"
            )
    if engines not in _ENGINES_UNDER_TEST:
        raise ValueError(
            f"unknown engines selection {engines!r}; "
            f"expected one of {sorted(_ENGINES_UNDER_TEST)}"
        )
    result = FuzzResult()
    runs_per_pair = 1 + len(_ENGINES_UNDER_TEST[engines])
    for k in range(count):
        if progress is not None:
            progress(k, count)
        spec = generate_spec(seed, k)
        result.regions += 1
        result.runs += len(systems) * runs_per_pair
        for failure in check_spec(spec, systems, engines=engines):
            if shrink_failures and failure.engine_divergence:
                n_before = len(failure.spec.ops)
                mode = failure.diverged_mode or "fast"
                small = shrink(
                    failure.spec,
                    failure.system,
                    fails=lambda sp, sy: _modes_diverge(sp, sy, mode),
                )
                failure = FuzzFailure(
                    small, failure.system, failure.oracle_ok,
                    failure.sanitizer, shrunk_from=n_before,
                    engine_divergence=True,
                    diverged_mode=mode,
                )
            elif shrink_failures:
                n_before = len(failure.spec.ops)
                small = shrink(failure.spec, failure.system)
                oracle_ok, report = run_spec(small, failure.system)
                failure = FuzzFailure(
                    small, failure.system, oracle_ok, report,
                    shrunk_from=n_before,
                )
            result.failures.append(failure)
            if len(result.failures) >= max_failures:
                return result
    return result
