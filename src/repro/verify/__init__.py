"""Dynamic verification: trace sanitizing + differential alias fuzzing.

The static layer (:mod:`repro.compiler.verify`) audits the enforcement
*plan*; this package audits enforcement *behaviour*:

* :func:`repro.verify.sanitizer.sanitize_trace` — replay a traced run
  against the per-backend happens-before contract.
* :func:`repro.verify.fuzz.fuzz` — generate adversarial regions and
  differentially run every backend against ``golden_execute`` and the
  sanitizer, shrinking failures to minimal repros.
* :mod:`repro.verify.reproduce` — save/load/rerun shrunken repros.

See ``docs/verification.md``.
"""

from repro.verify.fuzz import (
    BACKENDS,
    FuzzFailure,
    FuzzResult,
    MemOpSpec,
    RegionSpec,
    build_graph,
    fuzz,
    generate_spec,
    run_spec,
    shrink,
)
from repro.verify.reproduce import load_repro, rerun, save_failure
from repro.verify.sanitizer import (
    SanitizerReport,
    SanitizerViolation,
    sanitize_trace,
)

__all__ = [
    "BACKENDS",
    "FuzzFailure",
    "FuzzResult",
    "MemOpSpec",
    "RegionSpec",
    "SanitizerReport",
    "SanitizerViolation",
    "build_graph",
    "fuzz",
    "generate_spec",
    "load_repro",
    "rerun",
    "run_spec",
    "sanitize_trace",
    "save_failure",
    "shrink",
]
