"""Dynamic verification: trace sanitizing + differential alias fuzzing.

The static layer (:mod:`repro.compiler.verify`) audits the enforcement
*plan*; this package audits enforcement *behaviour*:

* :func:`repro.verify.sanitizer.sanitize_trace` — replay a traced run
  against the per-backend happens-before contract.
* :func:`repro.verify.fuzz.fuzz` — generate adversarial regions and
  differentially run every backend against ``golden_execute`` and the
  sanitizer, shrinking failures to minimal repros.  With
  ``oracle=True`` / ``coverage=True`` each region is additionally
  cross-checked *statically*: every stage-1..4 NO/MUST verdict against
  the stage-5 separation-logic oracle, and the installed MDE set
  against the oracle's required happens-before pairs.
* :mod:`repro.verify.reproduce` — save/load/rerun shrunken repros.

See ``docs/verification.md``.
"""

from repro.verify.fuzz import (
    BACKENDS,
    FuzzFailure,
    FuzzResult,
    MemOpSpec,
    RegionSpec,
    StaticContradiction,
    build_graph,
    coverage_gaps_spec,
    crosscheck_stages,
    fuzz,
    generate_spec,
    run_spec,
    shrink,
)
from repro.verify.reproduce import load_repro, rerun, save_failure
from repro.verify.sanitizer import (
    SanitizerReport,
    SanitizerViolation,
    sanitize_trace,
)

__all__ = [
    "BACKENDS",
    "FuzzFailure",
    "FuzzResult",
    "MemOpSpec",
    "RegionSpec",
    "SanitizerReport",
    "SanitizerViolation",
    "StaticContradiction",
    "build_graph",
    "coverage_gaps_spec",
    "crosscheck_stages",
    "fuzz",
    "generate_spec",
    "load_repro",
    "rerun",
    "run_spec",
    "sanitize_trace",
    "save_failure",
    "shrink",
]
