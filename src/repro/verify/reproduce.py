"""Standalone JSON repros for shrunken fuzz failures.

A repro file is a complete, self-describing record of one failing
(region, system) pair: the declarative :class:`~repro.verify.fuzz.RegionSpec`
(ops, environments, object size, symbol bounds) plus the failing system
and the violations observed when it was captured.  ``nachos-repro verify
--repro FILE`` re-materializes the region and re-runs the differential
check, so a failure found on one machine replays exactly anywhere —
the spec is content, not pickled state.

Static failures (the oracle cross-check and the sync-coverage check)
serialize the same way, with a ``static`` block recording which checker
fired and — for injected stage faults — the ``fault_seed`` that
deterministically re-flips the same verdict on replay.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Tuple

from repro.verify.fuzz import (
    FuzzFailure,
    MemOpSpec,
    RegionSpec,
    coverage_gaps_spec,
    crosscheck_stages,
    run_spec,
)
from repro.verify.sanitizer import SanitizerReport

FORMAT = "nachos-repro/fuzz-repro@1"


def failure_to_dict(failure: FuzzFailure) -> dict:
    payload = {
        "format": FORMAT,
        "system": failure.system,
        "oracle_ok": failure.oracle_ok,
        "engine_divergence": failure.engine_divergence,
        "violations": [str(v) for v in failure.sanitizer.violations],
        "spec": {
            "name": failure.spec.name,
            "size": failure.spec.size,
            "ops": [asdict(op) for op in failure.spec.ops],
            "envs": [
                {k: v for k, v in pairs} for pairs in failure.spec.envs
            ],
            "sym_bounds": {
                name: [lo, hi] for name, (lo, hi) in failure.spec.sym_bounds
            },
        },
    }
    if failure.static_kind is not None:
        payload["static"] = {
            "kind": failure.static_kind,
            "fault_seed": failure.fault_seed,
            "findings": list(failure.static_findings),
        }
    return payload


def save_failure(failure: FuzzFailure, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(failure_to_dict(failure), indent=2) + "\n")
    return path


def load_repro(path: Path) -> Tuple[RegionSpec, str]:
    """Read a repro file back into a (spec, system) pair."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a fuzz repro (format={payload.get('format')!r})"
        )
    raw = payload["spec"]
    spec = RegionSpec(
        name=raw["name"],
        size=raw["size"],
        ops=tuple(MemOpSpec(**op) for op in raw["ops"]),
        envs=tuple(
            tuple(sorted(env.items())) for env in raw["envs"]
        ),
        sym_bounds=tuple(
            sorted(
                (name, (lo, hi))
                for name, (lo, hi) in raw.get("sym_bounds", {}).items()
            )
        ),
    )
    return spec, payload["system"]


def rerun(path: Path) -> Tuple[bool, SanitizerReport]:
    """Re-execute a saved repro; returns (oracle_ok, sanitizer_report).

    A repro saved from an engine-divergence failure re-checks
    reference-vs-fast equivalence as well — it "still fails" until the
    modes agree again, folded into the returned ok flag.  A *static*
    repro re-runs its checker (re-injecting the recorded fault seed, if
    any) instead of executing: ok means the checker no longer fires.
    """
    spec, system = load_repro(path)
    payload = json.loads(Path(path).read_text())
    static = payload.get("static")
    if static is not None:
        if static["kind"] == "oracle":
            findings = crosscheck_stages(spec, fault_seed=static["fault_seed"])
        else:
            findings = coverage_gaps_spec(spec)
        report = SanitizerReport(backend="static", region=spec.name)
        report.violations.extend(str(f) for f in findings)
        return not findings, report
    oracle_ok, report = run_spec(spec, system)
    if payload.get("engine_divergence"):
        from repro.verify.fuzz import _modes_diverge

        oracle_ok = oracle_ok and not _modes_diverge(spec, system)
    return oracle_ok, report
