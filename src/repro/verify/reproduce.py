"""Standalone JSON repros for shrunken fuzz failures.

A repro file is a complete, self-describing record of one failing
(region, system) pair: the declarative :class:`~repro.verify.fuzz.RegionSpec`
(ops, environments, object size) plus the failing system and the
violations observed when it was captured.  ``nachos-repro verify
--repro FILE`` re-materializes the region and re-runs the differential
check, so a failure found on one machine replays exactly anywhere —
the spec is content, not pickled state.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Tuple

from repro.verify.fuzz import (
    FuzzFailure,
    MemOpSpec,
    RegionSpec,
    run_spec,
)

FORMAT = "nachos-repro/fuzz-repro@1"


def failure_to_dict(failure: FuzzFailure) -> dict:
    return {
        "format": FORMAT,
        "system": failure.system,
        "oracle_ok": failure.oracle_ok,
        "engine_divergence": failure.engine_divergence,
        "violations": [str(v) for v in failure.sanitizer.violations],
        "spec": {
            "name": failure.spec.name,
            "size": failure.spec.size,
            "ops": [asdict(op) for op in failure.spec.ops],
            "envs": [
                {k: v for k, v in pairs} for pairs in failure.spec.envs
            ],
        },
    }


def save_failure(failure: FuzzFailure, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(failure_to_dict(failure), indent=2) + "\n")
    return path


def load_repro(path: Path) -> Tuple[RegionSpec, str]:
    """Read a repro file back into a (spec, system) pair."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a fuzz repro (format={payload.get('format')!r})"
        )
    raw = payload["spec"]
    spec = RegionSpec(
        name=raw["name"],
        size=raw["size"],
        ops=tuple(MemOpSpec(**op) for op in raw["ops"]),
        envs=tuple(
            tuple(sorted(env.items())) for env in raw["envs"]
        ),
    )
    return spec, payload["system"]


def rerun(path: Path) -> Tuple[bool, "SanitizerReport"]:
    """Re-execute a saved repro; returns (oracle_ok, sanitizer_report).

    A repro saved from an engine-divergence failure re-checks
    reference-vs-fast equivalence as well — it "still fails" until the
    modes agree again, folded into the returned ok flag.
    """
    spec, system = load_repro(path)
    oracle_ok, report = run_spec(spec, system)
    if json.loads(Path(path).read_text()).get("engine_divergence"):
        from repro.verify.fuzz import _modes_diverge

        oracle_ok = oracle_ok and not _modes_diverge(spec, system)
    return oracle_ok, report
