"""Dynamic ordering sanitizer over simulator trace streams.

Where :func:`repro.compiler.verify.verify_enforcement` audits the
*static* enforcement plan (are all labeled pairs ordered by the MDEs?),
this module audits a *run*: it replays the tracer's event stream
(:mod:`repro.obs.tracer`) against the region graph and checks the
happens-before invariants every backend promises (see
``docs/simulation.md`` for the contract, ``docs/verification.md`` for
the rule catalogue):

``access-count``
    Every memory op performs exactly one access per invocation — one
    ``MEM_LOAD``/``MEM_STORE`` span or one ``MEM_FORWARD`` instant.
``conflict-separation``
    Conflicting accesses (byte ranges overlap, not both loads) complete
    in program order with strictly unequal timestamps.  Forward-completed
    loads are exempt: a forward decouples the load's value from cache
    timing, and the ``forward-source`` rule governs it instead.
``edge-wait``
    Every ORDER edge — and every MAY edge that the backend serializes
    (NACHOS-SW always; NACHOS when the ``==?`` verdict was *conflict* or
    the edge was resolved by completion) — delays the younger op's start
    to the older op's completion plus the order-signal latency, unless
    the younger op was satisfied by a forward.
``forward-edge-used``
    A compile-time FORWARD edge completes its load by forwarding.
``comparator-verdict``
    Every ``==?`` verdict equals the ground-truth byte-range overlap.
``forward-source``
    Every forward (static, runtime, or LSQ) sources the youngest
    exactly-matching older store: the store's byte range equals the
    load's, and no store between them overlaps the load.
``inorder-issue``
    OPT-LSQ enqueues in program order at non-decreasing cycles.
``replay-observes-stores`` / ``spurious-violation``
    Every SPEC-LSQ violation is followed by a replay completing after
    every violated store's completion — and names at least one store
    that actually completed after the speculative read (a violation
    whose every store had already published is spurious).

The sanitizer is deliberately redundant with the golden-model value
check: hash-token values catch most ordering bugs end to end, but a
backend can be *lucky* (an unordered pair whose racy outcome happens to
match program order on this seed).  The sanitizer checks the timing
obligation itself, so near-misses fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.graph import DFGraph, MDEKind
from repro.obs import tracer as obs
from repro.sim.backends.base import ranges_exact, ranges_overlap

#: Backends whose MDE edges the ``edge-wait`` family applies to.
MDE_BACKENDS = frozenset({"nachos-sw", "nachos"})

# Rule identifiers -----------------------------------------------------
ACCESS_COUNT = "access-count"
CONFLICT_SEPARATION = "conflict-separation"
EDGE_WAIT = "edge-wait"
FORWARD_EDGE_USED = "forward-edge-used"
COMPARATOR_VERDICT = "comparator-verdict"
FORWARD_SOURCE = "forward-source"
INORDER_ISSUE = "inorder-issue"
REPLAY_OBSERVES = "replay-observes-stores"
SPURIOUS_VIOLATION = "spurious-violation"


@dataclass(frozen=True)
class SanitizerViolation:
    """One broken invariant, located to an invocation and op(s)."""

    rule: str
    backend: str
    region: str
    inv: int
    ops: Tuple[int, ...]
    message: str

    def __str__(self) -> str:
        where = ",".join(str(o) for o in self.ops)
        return (
            f"[{self.rule}] {self.backend}/{self.region} "
            f"inv={self.inv} ops=({where}): {self.message}"
        )


@dataclass
class SanitizerReport:
    """Outcome of sanitizing one traced run."""

    backend: str
    region: str
    invocations: int = 0
    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[SanitizerViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self, limit: int = 10) -> str:
        head = (
            f"sanitizer {self.backend}/{self.region}: "
            f"{sum(self.checks.values())} checks over "
            f"{self.invocations} invocation(s) — "
        )
        if self.ok:
            return head + "clean"
        lines = [head + f"{len(self.violations)} violation(s)"]
        for v in self.violations[:limit]:
            lines.append(f"  {v}")
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class _Access:
    """One memory access reconstructed from the trace."""

    op: int
    kind: str  # "load" | "store" | "forward"
    start: int
    complete: int
    addr: int
    width: int
    src: int = -1  # forwarding store (forward accesses only)

    @property
    def range(self) -> Tuple[int, int]:
        return (self.addr, self.width)


def sanitize_trace(
    events: Iterable[obs.TraceEvent],
    graph: DFGraph,
    backend: str,
    region: Optional[str] = None,
    order_signal_latency: int = 1,
) -> SanitizerReport:
    """Check *events* (one traced run) against the ordering contract.

    ``backend`` is the backend's ``name`` attribute (``opt-lsq``,
    ``spec-lsq``, ``serial-mem``, ``nachos-sw``, ``nachos``); it selects
    which rule families apply.  ``graph`` must be the compiled graph the
    run executed (MDEs installed for the NACHOS systems).
    """
    report = SanitizerReport(backend=backend, region=region or graph.name)
    mem_ops = {op.op_id: op for op in graph.memory_ops}
    rank = {oid: k for k, oid in enumerate(sorted(mem_ops))}
    stores = [oid for oid in sorted(mem_ops) if mem_ops[oid].is_store]

    by_inv: Dict[int, List[obs.TraceEvent]] = {}
    for ev in events:
        by_inv.setdefault(ev.inv, []).append(ev)
    by_inv.pop(-1, None)

    def fail(rule: str, inv: int, ops: Tuple[int, ...], message: str) -> None:
        report.violations.append(
            SanitizerViolation(rule, backend, report.region, inv, ops, message)
        )

    def check(rule: str) -> None:
        report.checks[rule] = report.checks.get(rule, 0) + 1

    for inv in sorted(by_inv):
        report.invocations += 1
        evs = by_inv[inv]
        accesses: Dict[int, List[_Access]] = {}
        verdicts: Dict[Tuple[int, int], bool] = {}
        enqueues: List[Tuple[int, int]] = []  # (t, op) in emission order
        speculations: Dict[int, int] = {}
        spec_violations: Dict[int, Tuple[int, List[int]]] = {}
        replays: Dict[int, int] = {}

        for ev in evs:
            if ev.kind == obs.MEM_LOAD:
                accesses.setdefault(ev.op, []).append(
                    _Access(
                        ev.op, "load", ev.t, ev.t + ev.dur,
                        ev.args["addr"], ev.args["width"],
                    )
                )
            elif ev.kind == obs.MEM_STORE:
                accesses.setdefault(ev.op, []).append(
                    _Access(
                        ev.op, "store", ev.t, ev.t + ev.dur,
                        ev.args["addr"], ev.args["width"],
                    )
                )
            elif ev.kind == obs.MEM_FORWARD:
                accesses.setdefault(ev.op, []).append(
                    _Access(
                        ev.op, "forward", ev.t, ev.t,
                        ev.args["addr"], ev.args["width"], ev.args["src"],
                    )
                )
            elif ev.kind == obs.COMPARATOR_CHECK:
                verdicts[(ev.args["src"], ev.op)] = bool(ev.args["conflict"])
            elif ev.kind == obs.LSQ_ENQUEUE:
                enqueues.append((ev.t, ev.op))
            elif ev.kind == obs.SPECULATION:
                speculations[ev.op] = ev.t
            elif ev.kind == obs.VIOLATION:
                spec_violations[ev.op] = (ev.t, list(ev.args["stores"]))
            elif ev.kind == obs.REPLAY:
                replays[ev.op] = ev.t

        # -- access-count ---------------------------------------------
        final: Dict[int, _Access] = {}
        for oid in mem_ops:
            check(ACCESS_COUNT)
            got = accesses.get(oid, [])
            if len(got) != 1:
                fail(
                    ACCESS_COUNT, inv, (oid,),
                    f"expected exactly one access, saw {len(got)}",
                )
            if got:
                final[oid] = got[-1]

        # -- conflict-separation --------------------------------------
        oids = sorted(final)
        for i, a in enumerate(oids):
            for b in oids[i + 1:]:
                older, younger = final[a], final[b]
                if older.kind == "forward" or younger.kind == "forward":
                    continue
                if older.kind == "load" and younger.kind == "load":
                    continue
                if not ranges_overlap(older.range, younger.range):
                    continue
                check(CONFLICT_SEPARATION)
                if not older.complete < younger.complete:
                    fail(
                        CONFLICT_SEPARATION, inv, (a, b),
                        f"conflicting pair completed out of order "
                        f"({older.complete} !< {younger.complete}) at "
                        f"ranges {older.range} / {younger.range}",
                    )

        # -- forward-source -------------------------------------------
        for oid, acc in final.items():
            if acc.kind != "forward":
                continue
            check(FORWARD_SOURCE)
            src = final.get(acc.src)
            if acc.src not in mem_ops or not mem_ops[acc.src].is_store:
                fail(
                    FORWARD_SOURCE, inv, (oid, acc.src),
                    "forward source is not a store of this region",
                )
                continue
            if rank[acc.src] >= rank[oid]:
                fail(
                    FORWARD_SOURCE, inv, (oid, acc.src),
                    "forward source is not older than the load",
                )
                continue
            if src is not None and not ranges_exact(src.range, acc.range):
                fail(
                    FORWARD_SOURCE, inv, (oid, acc.src),
                    f"forwarded range {acc.range} does not exactly match "
                    f"the source store's range {src.range}",
                )
            for s2 in stores:
                if not rank[acc.src] < rank[s2] < rank[oid]:
                    continue
                other = final.get(s2)
                if other is not None and ranges_overlap(other.range, acc.range):
                    fail(
                        FORWARD_SOURCE, inv, (oid, acc.src, s2),
                        f"store {s2} between source and load overlaps the "
                        "load — the forward is not from the youngest match",
                    )

        # -- MDE rules (NACHOS / NACHOS-SW) ----------------------------
        if backend in MDE_BACKENDS:
            hardware = backend == "nachos"
            for edge in graph.mdes:
                src, dst = final.get(edge.src), final.get(edge.dst)
                if src is None or dst is None:
                    continue  # access-count already failed
                if edge.kind is MDEKind.FORWARD:
                    check(FORWARD_EDGE_USED)
                    if dst.kind != "forward" or dst.src != edge.src:
                        fail(
                            FORWARD_EDGE_USED, inv, (edge.src, edge.dst),
                            "FORWARD edge's load did not complete by "
                            "forwarding from its source store",
                        )
                    continue
                if edge.kind is MDEKind.MAY and hardware:
                    verdict = verdicts.get((edge.src, edge.dst))
                    if verdict is not None:
                        check(COMPARATOR_VERDICT)
                        truth = ranges_overlap(src.range, dst.range)
                        if verdict != truth:
                            fail(
                                COMPARATOR_VERDICT, inv, (edge.src, edge.dst),
                                f"==? verdict {verdict} but runtime ranges "
                                f"{src.range} / {dst.range} overlap={truth}",
                            )
                    if verdict is False:
                        continue  # proven non-conflicting: no wait owed
                # ORDER edge, serialized MAY (NACHOS-SW), or MAY whose
                # verdict was conflict / never computed: the younger op
                # must wait for completion + signal — unless a forward
                # satisfied it (forward-source governs the value).
                if dst.kind == "forward":
                    continue
                check(EDGE_WAIT)
                if dst.start < src.complete + order_signal_latency:
                    fail(
                        EDGE_WAIT, inv, (edge.src, edge.dst),
                        f"{edge.kind.name} edge not honored: younger op "
                        f"started at {dst.start} < older completion "
                        f"{src.complete} + {order_signal_latency}",
                    )

        # -- inorder-issue (OPT-LSQ) -----------------------------------
        if backend == "opt-lsq":
            prev_rank, prev_t = -1, None
            for t, oid in enqueues:
                check(INORDER_ISSUE)
                if rank.get(oid, -1) <= prev_rank:
                    fail(
                        INORDER_ISSUE, inv, (oid,),
                        "LSQ enqueue out of program order",
                    )
                if prev_t is not None and t < prev_t:
                    fail(
                        INORDER_ISSUE, inv, (oid,),
                        f"LSQ enqueue cycle went backwards ({prev_t} -> {t})",
                    )
                prev_rank, prev_t = rank.get(oid, -1), t

        # -- spec-lsq speculation rules --------------------------------
        if backend == "spec-lsq":
            for oid, (t_v, late) in spec_violations.items():
                check(REPLAY_OBSERVES)
                acc = final.get(oid)
                if oid not in replays:
                    fail(
                        REPLAY_OBSERVES, inv, (oid,),
                        "violation without a subsequent replay",
                    )
                elif acc is not None and acc.kind == "load":
                    for s in late:
                        sacc = final.get(s)
                        if sacc is not None and acc.complete <= sacc.complete:
                            fail(
                                REPLAY_OBSERVES, inv, (oid, s),
                                f"replayed read completed at {acc.complete} "
                                f"<= violated store's completion "
                                f"{sacc.complete}",
                            )
                t_spec = speculations.get(oid)
                if t_spec is not None:
                    check(SPURIOUS_VIOLATION)
                    already = [
                        s
                        for s in late
                        if final.get(s) is not None
                        and final[s].complete <= t_spec
                    ]
                    if already:
                        fail(
                            SPURIOUS_VIOLATION, inv, tuple([oid] + already),
                            "violation names store(s) that had already "
                            f"published at the speculative read ({t_spec})",
                        )

    return report
