"""The NACHOS-SW compiler: pairwise alias analysis and MDE insertion.

This package is the software half of the paper's contribution.  It takes a
region dataflow graph (:class:`repro.ir.DFGraph`) and produces:

* a pairwise alias labeling (``NO`` / ``MAY`` / ``MUST``) refined through
  four analysis stages mirroring Section V of the paper, and
* the set of memory dependency edges (MDEs) the accelerator must enforce,
  after stage-3 redundancy elimination.

Entry point: :class:`~repro.compiler.pipeline.AliasPipeline`.
"""

from repro.compiler.labels import AliasLabel, AliasMatrix, PairKind, pair_kind
from repro.compiler.pipeline import (
    AliasPipeline,
    PipelineConfig,
    PipelineResult,
    compile_region,
)
from repro.compiler.mde import insert_mdes
from repro.compiler.report import explain, stage_census
from repro.compiler.verify import OrderingViolation, verify_enforcement

__all__ = [
    "OrderingViolation",
    "explain",
    "stage_census",
    "verify_enforcement",
    "AliasLabel",
    "AliasMatrix",
    "AliasPipeline",
    "PairKind",
    "PipelineConfig",
    "PipelineResult",
    "compile_region",
    "insert_mdes",
    "pair_kind",
]
