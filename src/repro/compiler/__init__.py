"""The NACHOS-SW compiler: pairwise alias analysis and MDE insertion.

This package is the software half of the paper's contribution.  It takes a
region dataflow graph (:class:`repro.ir.DFGraph`) and produces:

* a pairwise alias labeling (``NO`` / ``MAY`` / ``MUST``) refined through
  the four analysis stages mirroring Section V of the paper plus the
  stage-5 separation-logic checker for symbolic pairs (ROADMAP item 4),
  and
* the set of memory dependency edges (MDEs) the accelerator must enforce,
  after stage-3 redundancy elimination — auditable after the fact by the
  static verifier (:mod:`repro.compiler.verify`) and the oracle-driven
  sync-coverage checker (:mod:`repro.compiler.coverage`).

Entry point: :class:`~repro.compiler.pipeline.AliasPipeline`.
"""

from repro.compiler.aliasing.stage5 import (
    OracleVerdict,
    Stage5Stats,
    oracle_verdict,
    separation_verdict,
)
from repro.compiler.coverage import (
    CoverageGap,
    CoverageReport,
    check_sync_coverage,
    required_pairs,
)
from repro.compiler.labels import AliasLabel, AliasMatrix, PairKind, pair_kind
from repro.compiler.ordering import (
    edge_guarantees_order,
    is_forward_candidate,
    relation_guarantees_order,
)
from repro.compiler.pipeline import (
    AliasPipeline,
    PipelineConfig,
    PipelineResult,
    compile_region,
)
from repro.compiler.mde import insert_mdes
from repro.compiler.report import explain, stage_census
from repro.compiler.verify import (
    OrderingViolation,
    guaranteed_reachability,
    verify_enforcement,
)

__all__ = [
    "CoverageGap",
    "CoverageReport",
    "OracleVerdict",
    "OrderingViolation",
    "Stage5Stats",
    "check_sync_coverage",
    "edge_guarantees_order",
    "explain",
    "guaranteed_reachability",
    "is_forward_candidate",
    "oracle_verdict",
    "relation_guarantees_order",
    "required_pairs",
    "separation_verdict",
    "stage_census",
    "verify_enforcement",
    "AliasLabel",
    "AliasMatrix",
    "AliasPipeline",
    "PairKind",
    "PipelineConfig",
    "PipelineResult",
    "compile_region",
    "insert_mdes",
    "pair_kind",
]
