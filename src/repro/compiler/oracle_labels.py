"""Oracle labeling: the limit of *any* static alias analysis.

Builds the alias matrix a hypothetically perfect compiler would produce
for a given trace: a pair is ``NO`` when its addresses never overlap in
any invocation of the trace, ``MUST`` when they overlap in at least one
(a static schedule must order the pair for the whole run — it cannot
order it "only on Tuesdays").

This is the software-only performance ceiling: NACHOS-SW with oracle
labels.  The gap between it and NACHOS measures what *per-invocation*
hardware checking buys beyond anything a compiler could ever prove —
nonzero exactly on data-dependent access patterns, where the same pair
conflicts in some invocations and not others.

The labels are trace-specific by construction; running them against a
different trace would be unsound.  Use them only for limit studies.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Set, Tuple

from repro.compiler.aliasing.stage3 import prune_stage3
from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.compiler.mde import insert_mdes
from repro.ir.graph import DFGraph


def oracle_matrix(
    graph: DFGraph, envs: Iterable[Mapping[str, int]]
) -> Tuple[AliasMatrix, Set[Tuple[int, int]]]:
    """Ground-truth labels for *graph* over *envs*.

    Returns the matrix plus the pairs that are an exact (same address,
    same width) match in **every** invocation — the only pairs a static
    schedule could safely forward.
    """
    matrix = AliasMatrix.universe(graph, default=AliasLabel.NO)
    ops = {op.op_id: op for op in graph.memory_ops}
    pairs = matrix.pairs()
    always_exact = set(pairs)
    ever_overlap: Set[Tuple[int, int]] = set()

    for env in envs:
        concrete = {
            oid: (op.addr.evaluate(env), op.addr.width) for oid, op in ops.items()
        }
        for older, younger in pairs:
            a, wa = concrete[older]
            b, wb = concrete[younger]
            if a < b + wb and b < a + wa:
                ever_overlap.add((older, younger))
            if not (a == b and wa == wb):
                always_exact.discard((older, younger))

    for pair in pairs:
        matrix.labels[pair] = (
            AliasLabel.MUST if pair in ever_overlap else AliasLabel.NO
        )
    return matrix, always_exact & ever_overlap


def compile_with_oracle(
    graph: DFGraph, envs: Iterable[Mapping[str, int]], apply: bool = True
):
    """Install the oracle compiler's MDEs on *graph*; returns the edges."""
    envs = list(envs)
    matrix, exact = oracle_matrix(graph, envs)
    plan = prune_stage3(graph, matrix)
    return insert_mdes(graph, plan, exact, matrix, apply=apply)
