"""Static verification of an enforcement plan (a mini pipecheck).

After MDE insertion, every non-NO pair must be *ordered*: the younger
operation reachable from the older one through edges that guarantee
ordering under the target system.  For NACHOS that is data edges and
ORDER edges, plus the pair's own MAY edge (the runtime check orders it
when it matters) or the pair's own FORWARD edge (the load provably
reads the store's value) — but **not** a chain of unrelated MAY edges,
and **not** a chain through a FORWARD edge, which orders the store's
value delivery but not its publish.

``verify_enforcement`` re-derives the ordering relation from scratch and
returns the violating pairs; the pipeline's own stage 3 should never
produce any (property-tested), and a hand-edited or deserialized MDE set
can be audited with the same function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.compiler.ordering import edge_guarantees_order
from repro.ir.graph import DFGraph, MDEKind


@dataclass(frozen=True)
class OrderingViolation:
    older: int
    younger: int
    label: AliasLabel

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.label.value.upper()} pair ({self.older}, {self.younger}) "
            "is not ordered by the enforcement plan"
        )


def guaranteed_reachability(graph: DFGraph) -> Dict[int, Set[int]]:
    """Reachability over data edges + ordering-guaranteeing MDEs only.

    Which installed edge kinds guarantee ordering is decided by
    :func:`repro.compiler.ordering.edge_guarantees_order` (ORDER edges
    only).  FORWARD edges deliberately do NOT contribute: a forward
    delivers the store's *value* as soon as it is computed, typically
    long before the store's *publish* completes in the cache, so a path
    through a FORWARD edge does not order the store's publish before
    downstream accesses.  A FORWARD edge satisfies its own ST->LD pair
    (the load provably reads the store's value), which
    ``verify_enforcement`` accepts directly.

    Also used by the sync-coverage checker
    (:mod:`repro.compiler.coverage`) to prove the oracle's required
    happens-before pairs are enforced.
    """
    succ: Dict[int, Set[int]] = {op.op_id: set() for op in graph.ops}
    for op in graph.ops:
        for src in op.inputs:
            succ[src].add(op.op_id)
    for edge in graph.mdes:
        if edge_guarantees_order(edge.kind):
            succ[edge.src].add(edge.dst)
    reach: Dict[int, Set[int]] = {op.op_id: set() for op in graph.ops}
    for op in reversed(graph.ops):
        for nxt in succ[op.op_id]:
            reach[op.op_id].add(nxt)
            reach[op.op_id] |= reach[nxt]
    return reach


#: Backwards-compatible alias (the function predates its public use).
_guaranteed_reachability = guaranteed_reachability


def verify_enforcement(
    graph: DFGraph, labels: AliasMatrix
) -> List[OrderingViolation]:
    """Return every labeled pair the installed MDEs fail to order.

    * MUST pairs need guaranteed ordering (data / ORDER / FORWARD path).
    * MAY pairs need guaranteed ordering **or** their own direct MAY
      edge (whose runtime check supplies the ordering when addresses
      conflict).
    """
    reach = guaranteed_reachability(graph)
    direct_may: Set[Tuple[int, int]] = {
        (e.src, e.dst) for e in graph.mdes if e.kind is MDEKind.MAY
    }
    direct_forward: Set[Tuple[int, int]] = {
        (e.src, e.dst) for e in graph.mdes if e.kind is MDEKind.FORWARD
    }
    violations: List[OrderingViolation] = []
    for (older, younger), label in labels:
        if label is AliasLabel.NO:
            continue
        if younger in reach[older]:
            continue
        if label is AliasLabel.MAY and (older, younger) in direct_may:
            continue
        if label is AliasLabel.MUST and (older, younger) in direct_forward:
            continue
        violations.append(OrderingViolation(older, younger, label))
    return violations
