"""Stage 5 — separation-logic alias oracle over the symbolic address language.

Stages 1--4 mirror what LLVM 3.8 + Polly could prove, and therefore bail
out the moment an offset contains an opaque symbol: ``compare_offsets``
returns MAY for any difference with ``has_syms``.  That leaves precision
on the table in three recurring shapes:

* **Cancelling symbols** — ``a[s + i]`` vs ``a[s + j]``: the symbol
  cancels in the difference, which is purely affine, but stage 4 never
  looks because the *individual* offsets are symbolic.
* **Congruence-disjoint symbols** — ``rec[16*s1 + 0]`` vs
  ``rec[16*s2 + 8]`` (field accesses of a strided record): the
  difference ``16*(s1 - s2) + 8`` is ``8 (mod 16)`` for *every* integer
  valuation of the symbols, which can never land in the overlap window
  of two 8-byte accesses.
* **Bounded symbols** — an index the front-end can bound (e.g. a table
  lookup, :attr:`repro.ir.address.Sym.lo`/``hi``): the footprint is a
  bounded interval, so interval separation and even exact enumeration
  apply.

This module decides such pairs with a separation-logic reading of the
address language: each access denotes a *footprint* — a heaplet (the
points-to root) carrying a byte-range formula — and two accesses are
disjoint exactly when the separating conjunction ``fp_a * fp_b`` is
satisfiable for every valuation, i.e. when their heaplets differ or
their byte ranges cannot intersect.  Byte-range entailment runs over the
value set of the affine difference: an interval (IV trip counts plus
declared symbol bounds) intersected with a lattice ``const + gcd·Z``
over **all** coefficients.  The lattice test is sound for *unbounded*
symbols — congruence holds for every integer — which is precisely the
power stages 1--4 lack.

Two deliberately separate entry points:

* :func:`refine_stage5` — the precision stage: refines symbolic MAY
  pairs in the pipeline (after stage 4, before stage-3 pruning).
* :func:`oracle_verdict` — the independent oracle: recomputes a verdict
  for *any* pair from the address expressions alone, sharing **no code
  path** with :mod:`repro.compiler.aliasing.symbolic`, so the
  differential fuzzer can cross-check every stage-1..4 verdict against
  it and the coverage checker (:mod:`repro.compiler.coverage`) can
  enumerate required happens-before pairs from it.

Verdict semantics match the pipeline's:  NO = footprints disjoint for
every valuation; MUST = footprints intersect for every valuation;
``exact`` = identical address and width for every valuation (the ST->LD
forwarding precondition).  Everything the oracle cannot prove stays MAY
— those remain NACHOS's runtime checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.compiler.aliasing.symbolic import DEFAULT_ENUMERATION_LIMIT
from repro.ir.address import AddressExpr, AffineExpr, MemObject, PointerParam
from repro.ir.graph import DFGraph


# ----------------------------------------------------------------------
# Footprints: heaplet identity
# ----------------------------------------------------------------------

#: A heaplet handle: ("obj", uid) for a provable allocation (directly or
#: via stage-2-style provenance), ("param", uid) for an opaque pointer
#: that at least names *itself* (two accesses through the same parameter
#: share a base even when its allocation site is unknown).
Heaplet = Tuple[str, int]


def heaplet_of(addr: AddressExpr) -> Heaplet:
    """The points-to root of an access's footprint."""
    base = addr.base
    if isinstance(base, MemObject):
        return ("obj", base.uid)
    assert isinstance(base, PointerParam)
    if base.provenance is not None:
        return ("obj", base.provenance.uid)
    return ("param", base.uid)


def _heaplets_disjoint(a: Heaplet, b: Heaplet) -> Optional[bool]:
    """True = provably separate, False = provably identical, None = unknown."""
    if a == b:
        return False
    if a[0] == "obj" and b[0] == "obj":
        return True  # distinct allocations never overlap
    # At least one opaque parameter with a different handle: it may point
    # anywhere, including into the other heaplet.
    return None


# ----------------------------------------------------------------------
# Byte-range value sets
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ValueSet:
    """Sound over-approximation of an affine expression's reachable values.

    The values lie on the lattice ``phase + modulus * Z`` (``modulus = 0``
    means the single value ``phase``) clipped to the inclusive interval
    ``[lo, hi]``; ``None`` bounds mean unbounded (an unbounded symbol
    appears with a nonzero coefficient).
    """

    phase: int
    modulus: int
    lo: Optional[int]
    hi: Optional[int]

    def intersects(self, wlo: int, whi: int) -> bool:
        """Can any reachable value land in the window ``[wlo, whi]``?"""
        if self.lo is not None:
            wlo = max(wlo, self.lo)
        if self.hi is not None:
            whi = min(whi, self.hi)
        if wlo > whi:
            return False
        if self.modulus == 0:
            return wlo <= self.phase <= whi
        # First lattice point >= wlo, in exact integer arithmetic
        # (ceil((wlo - phase) / modulus) without float rounding).
        steps = -((self.phase - wlo) // self.modulus)
        first = self.phase + steps * self.modulus
        return first <= whi

    def within(self, wlo: int, whi: int) -> bool:
        """Do *all* reachable values land in the window ``[wlo, whi]``?"""
        return (
            self.lo is not None
            and self.hi is not None
            and wlo <= self.lo
            and self.hi <= whi
        )


def value_set(expr: AffineExpr) -> ValueSet:
    """Interval + gcd-lattice characterization of *expr*'s values.

    Induction variables contribute their trip-count span; bounded symbols
    contribute their declared range; an unbounded symbol makes the
    interval unbounded on both sides but still contributes its
    coefficient to the lattice — congruence holds for every integer, so
    the lattice part stays sound with no bounds at all.
    """
    modulus = 0
    lo: Optional[int] = expr.const
    hi: Optional[int] = expr.const

    def widen(span_lo: int, span_hi: int) -> None:
        nonlocal lo, hi
        if lo is not None:
            lo += span_lo
        if hi is not None:
            hi += span_hi

    for iv, coeff in expr.iv_terms:
        modulus = math.gcd(modulus, abs(coeff))
        span = coeff * (iv.trip_count - 1)
        widen(min(span, 0), max(span, 0))
    for sym, coeff in expr.sym_terms:
        modulus = math.gcd(modulus, abs(coeff))
        if sym.bounded:
            widen(min(coeff * sym.lo, coeff * sym.hi), max(coeff * sym.lo, coeff * sym.hi))
        else:
            lo = None
            hi = None
    return ValueSet(phase=expr.const, modulus=modulus, lo=lo, hi=hi)


def _enumerate_joint(
    diff: AffineExpr, wlo: int, whi: int, limit: int
) -> Optional[Tuple[bool, bool]]:
    """Exact ``(can_overlap, always_overlaps)`` by sweeping the joint domain.

    The domain is the product of every IV's trip range and every bounded
    symbol's declared range.  Returns ``None`` when any symbol is
    unbounded or the joint domain exceeds *limit*.
    """
    dims = []
    size = 1
    for iv, coeff in diff.iv_terms:
        dims.append((coeff, iv.domain))
        size *= iv.trip_count
        if size > limit:
            return None
    for sym, coeff in diff.sym_terms:
        if not sym.bounded:
            return None
        dims.append((coeff, sym.domain))
        size *= len(sym.domain)
        if size > limit:
            return None

    can = False
    always = True

    def rec(k: int, acc: int) -> None:
        nonlocal can, always
        if k == len(dims):
            if wlo <= acc <= whi:
                can = True
            else:
                always = False
            return
        coeff, domain = dims[k]
        for v in domain:
            rec(k + 1, acc + coeff * v)

    rec(0, diff.const)
    return can, always


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OracleVerdict:
    """One pair's separation-logic verdict.

    ``can_overlap`` / ``always_overlaps`` are known exactly only when the
    verdict came from a constant difference or a full enumeration
    (``decided_by`` in ``{"constant", "enumeration"}``); ``None`` means
    the question was answered by a sound over-approximation (or an axiom,
    for TBAA) that does not produce the exact booleans.
    """

    label: AliasLabel
    exact: bool = False
    decided_by: str = "opaque"
    can_overlap: Optional[bool] = None
    always_overlaps: Optional[bool] = None


def _window(width_a: int, width_b: int) -> Tuple[int, int]:
    # Ranges [oa, oa+wa) and [ob, ob+wb) intersect iff -wa < oa-ob < wb.
    return (-width_a + 1, width_b - 1)


def separation_verdict(
    a: AddressExpr,
    b: AddressExpr,
    use_tbaa: bool = True,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> OracleVerdict:
    """Separating-conjunction disjointness of two access footprints.

    Independent of :func:`repro.compiler.aliasing.symbolic.compare_offsets`
    by construction — this is what lets the fuzzer use it as an oracle
    against stages 1--4.
    """
    if use_tbaa and (
        a.type_tag is not None
        and b.type_tag is not None
        and a.type_tag != b.type_tag
    ):
        # The same axiom the pipeline assumes (-fstrict-aliasing): typed
        # heaplets of different tags are separate by fiat.
        return OracleVerdict(AliasLabel.NO, decided_by="tbaa")

    disjoint = _heaplets_disjoint(heaplet_of(a), heaplet_of(b))
    if disjoint is True:
        return OracleVerdict(
            AliasLabel.NO, decided_by="heaplet", can_overlap=False, always_overlaps=False
        )
    if disjoint is None:
        return OracleVerdict(AliasLabel.MAY, decided_by="opaque")

    # Same heaplet: the separating conjunction reduces to byte-range
    # disjointness of the two interval formulas, i.e. to the value set of
    # the affine difference against the overlap window.
    diff = a.offset - b.offset
    wlo, whi = _window(a.width, b.width)

    if diff.is_constant:
        if wlo <= diff.const <= whi:
            exact = diff.const == 0 and a.width == b.width
            return OracleVerdict(
                AliasLabel.MUST,
                exact=exact,
                decided_by="constant",
                can_overlap=True,
                always_overlaps=True,
            )
        return OracleVerdict(
            AliasLabel.NO, decided_by="constant", can_overlap=False, always_overlaps=False
        )

    swept = _enumerate_joint(diff, wlo, whi, enumeration_limit)
    if swept is not None:
        can, always = swept
        if not can:
            return OracleVerdict(
                AliasLabel.NO, decided_by="enumeration", can_overlap=False, always_overlaps=False
            )
        if always:
            # Overlaps at every domain point; never exact — an exact match
            # means an identically-zero difference, handled above.
            return OracleVerdict(
                AliasLabel.MUST, decided_by="enumeration", can_overlap=True, always_overlaps=True
            )
        return OracleVerdict(
            AliasLabel.MAY, decided_by="enumeration", can_overlap=True, always_overlaps=False
        )

    values = value_set(diff)
    if not values.intersects(wlo, whi):
        return OracleVerdict(AliasLabel.NO, decided_by="lattice")
    if values.within(wlo, whi):
        return OracleVerdict(AliasLabel.MUST, decided_by="interval")
    return OracleVerdict(AliasLabel.MAY, decided_by="opaque")


def oracle_verdict(
    graph: DFGraph,
    older: int,
    younger: int,
    use_tbaa: bool = True,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> OracleVerdict:
    """Separation-logic verdict for one (older, younger) op pair of *graph*."""
    a = graph.op(older).addr
    b = graph.op(younger).addr
    if a is None or b is None:
        raise ValueError(f"ops ({older}, {younger}) must both be memory ops")
    return separation_verdict(
        a, b, use_tbaa=use_tbaa, enumeration_limit=enumeration_limit
    )


# ----------------------------------------------------------------------
# The precision stage
# ----------------------------------------------------------------------


@dataclass
class Stage5Stats:
    """How much symbolic precision stage 5 recovered on one region."""

    symbolic_pairs: int = 0  # MAY pairs with symbolic offsets examined
    resolved_no: int = 0
    resolved_must: int = 0

    @property
    def resolved(self) -> int:
        return self.resolved_no + self.resolved_must

    def merge(self, other: "Stage5Stats") -> None:
        self.symbolic_pairs += other.symbolic_pairs
        self.resolved_no += other.resolved_no
        self.resolved_must += other.resolved_must


def refine_stage5(
    graph: DFGraph,
    matrix: AliasMatrix,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    exact_pairs: "Set[Tuple[int, int]] | None" = None,
    use_tbaa: bool = True,
    stats: Optional[Stage5Stats] = None,
) -> AliasMatrix:
    """Return a refined copy of *matrix*; only symbolic MAY labels change.

    Pairs whose offsets are pure affine expressions are exactly the ones
    stages 1--4 already decided with the same interval/lattice/enumeration
    power, so stage 5 leaves them untouched (keeping every existing label,
    plan, and golden timeline bit-identical for symbol-free regions) and
    attacks only the pairs at least one of whose offsets mentions a
    symbol.
    """
    refined = matrix.copy()
    ops: Dict[int, object] = {op.op_id: op for op in graph.memory_ops}
    for older, younger in matrix.pairs(AliasLabel.MAY):
        a = ops[older].addr
        b = ops[younger].addr
        if not (a.offset.has_syms or b.offset.has_syms):
            continue  # stages 1-4 territory; nothing new to say
        if stats is not None:
            stats.symbolic_pairs += 1
        verdict = separation_verdict(
            a, b, use_tbaa=use_tbaa, enumeration_limit=enumeration_limit
        )
        if verdict.label is AliasLabel.MAY:
            continue
        refined.set(older, younger, verdict.label)
        if stats is not None:
            if verdict.label is AliasLabel.NO:
                stats.resolved_no += 1
            else:
                stats.resolved_must += 1
        if verdict.exact and exact_pairs is not None:
            exact_pairs.add((older, younger))
    return refined
