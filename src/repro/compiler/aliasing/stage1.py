"""Stage 1 — intra-region alias analysis (LLVM Basic/TBAA/SCEV analogue).

Assigns the initial MAY/MUST/NO label to every disambiguation-relevant
pair.  Stage 1 sees only information available *inside* the region:

* **Base objects** (BasicAA): accesses to two distinct named allocations
  never alias; opaque pointer parameters cannot be resolved.
* **Types** (TBAA): accesses with different type tags are assumed
  disjoint (when enabled, as with ``-fstrict-aliasing``).
* **Scalar evolution** (SCEV): offsets affine in *one* induction variable
  are compared exactly over the iteration domain.  Multi-variable
  subscripts — the multidimensional-array patterns of Section V-E — are
  beyond stage 1 and stay MAY, exactly as the paper observes for
  equake/lbm/namd/bodytrack/dwt53.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.compiler.aliasing.symbolic import (
    DEFAULT_ENUMERATION_LIMIT,
    OffsetRelation,
    compare_offsets,
)
from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.ir.address import AddressExpr, MemObject, PointerParam
from repro.ir.graph import DFGraph


def _tbaa_disjoint(a: AddressExpr, b: AddressExpr) -> bool:
    return (
        a.type_tag is not None
        and b.type_tag is not None
        and a.type_tag != b.type_tag
    )


def _classify(
    a: AddressExpr,
    b: AddressExpr,
    use_tbaa: bool,
    enumeration_limit: int,
) -> OffsetRelation:
    if use_tbaa and _tbaa_disjoint(a, b):
        return OffsetRelation(AliasLabel.NO)

    base_a, base_b = a.base, b.base
    both_objects = isinstance(base_a, MemObject) and isinstance(base_b, MemObject)
    if both_objects:
        if base_a.uid != base_b.uid:
            return OffsetRelation(AliasLabel.NO)
        return compare_offsets(a, b, single_iv_only=True, enumeration_limit=enumeration_limit)

    same_param = (
        isinstance(base_a, PointerParam)
        and isinstance(base_b, PointerParam)
        and base_a.uid == base_b.uid
    )
    if same_param:
        # The unknown base cancels; offsets decide.
        return compare_offsets(a, b, single_iv_only=True, enumeration_limit=enumeration_limit)

    # At least one opaque pointer with a different (or unknown) base:
    # stage 1 cannot see across the call boundary.
    return OffsetRelation(AliasLabel.MAY)


def analyze_stage1(
    graph: DFGraph,
    use_tbaa: bool = True,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    exact_pairs: "Set[Tuple[int, int]] | None" = None,
) -> AliasMatrix:
    """Label every pair of *graph*; optionally record exact-match pairs.

    ``exact_pairs`` (if given) collects pairs proven to be the identical
    address every invocation — the candidates for ST->LD forwarding.
    """
    matrix = AliasMatrix.universe(graph)
    ops = {op.op_id: op for op in graph.memory_ops}
    for (older, younger) in matrix.pairs():
        rel = _classify(
            ops[older].addr,
            ops[younger].addr,
            use_tbaa=use_tbaa,
            enumeration_limit=enumeration_limit,
        )
        matrix.set(older, younger, rel.label)
        if rel.exact and exact_pairs is not None:
            exact_pairs.add((older, younger))
    return matrix
