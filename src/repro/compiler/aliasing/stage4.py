"""Stage 4 — polyhedral analysis of multidimensional accesses (Section V-E).

Standard alias analyses are confounded by multidimensional array
subscripts such as ``A[Anext][0][0]`` or ``w[col][0]`` — after address
lowering these are affine in *several* induction variables, which the
single-variable SCEV reasoning of stage 1 refuses.  Polly models the
access functions as integer polyhedra over the bounded iteration domain
and decides overlap exactly.

Our analogue: for MAY pairs whose bases are provable (directly or via
stage-2 provenance) and whose offsets are pure affine expressions, decide
overlap over the joint iteration domain with the full multi-variable
comparison (gcd lattice test + bounded enumeration).  Accesses with
opaque symbols — e.g. data-dependent indices — remain MAY, as they do for
Polly.

The paper reports stage 4 perfectly disambiguating the acceleration
regions of equake, lbm, namd, bodytrack, and dwt53.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.compiler.aliasing.symbolic import DEFAULT_ENUMERATION_LIMIT, compare_offsets
from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.ir.graph import DFGraph


def refine_stage4(
    graph: DFGraph,
    matrix: AliasMatrix,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    exact_pairs: "Set[Tuple[int, int]] | None" = None,
) -> AliasMatrix:
    """Return a refined copy of *matrix*; only MAY labels may change."""
    refined = matrix.copy()
    ops = {op.op_id: op for op in graph.memory_ops}
    for older, younger in matrix.pairs(AliasLabel.MAY):
        a = ops[older].addr
        b = ops[younger].addr
        base_a = a.interprocedural_base
        base_b = b.interprocedural_base
        if base_a is None or base_b is None:
            continue
        if base_a.uid != base_b.uid:
            # Stage 2 normally catches this; kept for stage-4-only runs.
            refined.set(older, younger, AliasLabel.NO)
            continue
        if a.offset.has_syms or b.offset.has_syms:
            continue  # outside the polyhedral model
        rel = compare_offsets(
            a, b, single_iv_only=False, enumeration_limit=enumeration_limit
        )
        refined.set(older, younger, rel.label)
        if rel.exact and exact_pairs is not None:
            exact_pairs.add((older, younger))
    return refined
