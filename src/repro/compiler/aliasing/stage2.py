"""Stage 2 — inter-procedural MAY -> NO refinement (paper Section V-C).

LLVM 3.8's standard alias analyses stop at function boundaries.  Many MAY
labels from stage 1 involve pointers that entered the region as arguments
but were derived from global or local variables in the caller.  Stage 2
traces the provenance of each opaque pointer back across the call
boundary; when two operations trace to *different* source objects the
pair becomes NO, and when they trace to the *same* object the offsets are
re-compared with the base now known.

Provenance is tractable here for the same reasons as in the paper: the
accelerated path is invoked from a single call site and the workloads use
no function pointers.  Pointers whose chain is lost (stored to memory and
reloaded) keep ``provenance=None`` and remain MAY.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.compiler.aliasing.symbolic import DEFAULT_ENUMERATION_LIMIT, compare_offsets
from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.ir.graph import DFGraph


def refine_stage2(
    graph: DFGraph,
    matrix: AliasMatrix,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    exact_pairs: "Set[Tuple[int, int]] | None" = None,
) -> AliasMatrix:
    """Return a refined copy of *matrix*; only MAY labels may change."""
    refined = matrix.copy()
    ops = {op.op_id: op for op in graph.memory_ops}
    for older, younger in matrix.pairs(AliasLabel.MAY):
        a = ops[older].addr
        b = ops[younger].addr
        base_a = a.interprocedural_base
        base_b = b.interprocedural_base
        if base_a is None or base_b is None:
            continue  # provenance chain lost; stays MAY
        if base_a.uid != base_b.uid:
            refined.set(older, younger, AliasLabel.NO)
            continue
        rel = compare_offsets(
            a, b, single_iv_only=True, enumeration_limit=enumeration_limit
        )
        refined.set(older, younger, rel.label)
        if rel.exact and exact_pairs is not None:
            exact_pairs.add((older, younger))
    return refined
