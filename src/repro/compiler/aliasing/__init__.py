"""The four alias-analysis stages of NACHOS-SW (paper Section V)."""

from repro.compiler.aliasing.symbolic import OffsetRelation, compare_offsets
from repro.compiler.aliasing.stage1 import analyze_stage1
from repro.compiler.aliasing.stage2 import refine_stage2
from repro.compiler.aliasing.stage3 import EnforcementPlan, RetainedRelation, prune_stage3
from repro.compiler.aliasing.stage4 import refine_stage4

__all__ = [
    "EnforcementPlan",
    "OffsetRelation",
    "RetainedRelation",
    "analyze_stage1",
    "compare_offsets",
    "prune_stage3",
    "refine_stage2",
    "refine_stage4",
]
