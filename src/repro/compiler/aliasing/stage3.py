"""Stage 3 — redundancy elimination via dataflow reachability (Section V-D).

A labeled alias relation need not be *enforced* when the dataflow graph
already orders the two operations: if the younger op is reachable from the
older one over data edges (or over already-retained MDEs), the transitive
dependence subsumes the memory ordering.  Removing these redundant
relations is what keeps NACHOS's MDE energy low (the paper reports stage 3
removing 40--84%, ~68% on average, and 93% of potential MDEs overall).

Two paper-mandated details:

* ST->LD MUST relations are retained even when redundant, so the value can
  be *forwarded* rather than re-loaded ("We do not eliminate St-Ld aliases
  even if they are redundant to ensure forwarding").
* MUST relations are enforced before MAY relations: MUST pairs are
  processed first, so a MAY pair whose ordering is implied by retained
  MUST edges is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.compiler.labels import AliasLabel, AliasMatrix, PairKind, pair_kind
from repro.compiler.ordering import relation_guarantees_order
from repro.ir.graph import DFGraph


@dataclass(frozen=True)
class RetainedRelation:
    """An alias relation that survived stage 3 and must be enforced."""

    older: int
    younger: int
    label: AliasLabel
    kind: PairKind


@dataclass
class EnforcementPlan:
    """Output of stage 3: which relations the hardware must see."""

    retained: List[RetainedRelation] = field(default_factory=list)
    removed_must: int = 0
    removed_may: int = 0

    @property
    def removed(self) -> int:
        return self.removed_must + self.removed_may

    @property
    def retained_must(self) -> List[RetainedRelation]:
        return [r for r in self.retained if r.label is AliasLabel.MUST]

    @property
    def retained_may(self) -> List[RetainedRelation]:
        return [r for r in self.retained if r.label is AliasLabel.MAY]

    def retained_fraction(self, total_relations: int) -> float:
        return len(self.retained) / total_relations if total_relations else 0.0


class _ReachIndex:
    """DAG reachability over data edges + retained MDEs, as bitsets.

    Ops are in topological program order, so one backward sweep computes
    every op's reachable-set as a big-int bitmask; queries are O(1) bit
    tests.  Retained relations are few (~50 per region in the paper), so
    recomputing the sweep after each retained edge is cheap — far cheaper
    than a DFS per pair on regions with tens of thousands of pairs.
    """

    def __init__(self, graph: DFGraph) -> None:
        self._order = [op.op_id for op in graph.ops]
        self._index = {oid: k for k, oid in enumerate(self._order)}
        self._succ: Dict[int, List[int]] = {oid: [] for oid in self._order}
        for op in graph.ops:
            for src in op.inputs:
                self._succ[src].append(op.op_id)
        self._reach: Dict[int, int] = {}
        self._sweep()

    def _sweep(self) -> None:
        reach: Dict[int, int] = {}
        for oid in reversed(self._order):
            mask = 0
            for nxt in self._succ[oid]:
                mask |= (1 << self._index[nxt]) | reach[nxt]
            reach[oid] = mask
        self._reach = reach

    def add_edge(self, src: int, dst: int) -> None:
        self._succ[src].append(dst)
        self._sweep()

    def reachable(self, src: int, dst: int) -> bool:
        if src == dst:
            return True
        return bool(self._reach[src] >> self._index[dst] & 1)


def prune_stage3(
    graph: DFGraph,
    matrix: AliasMatrix,
    keep_st_ld_forwarding: bool = True,
    exact_pairs: Optional[Set[Tuple[int, int]]] = None,
) -> EnforcementPlan:
    """Drop relations subsumed by transitive dependencies."""
    plan = EnforcementPlan()
    reach = _ReachIndex(graph)
    ops = {op.op_id: op for op in graph.memory_ops}
    exact = exact_pairs or set()

    def process(pairs: Sequence[Tuple[int, int]], label: AliasLabel) -> None:
        for older, younger in pairs:
            kind = pair_kind(ops[older], ops[younger])
            assert kind is not None
            is_forwarding = (
                keep_st_ld_forwarding
                and label is AliasLabel.MUST
                and kind is PairKind.ST_LD
            )
            if not is_forwarding and reach.reachable(older, younger):
                if label is AliasLabel.MUST:
                    plan.removed_must += 1
                else:
                    plan.removed_may += 1
                continue
            plan.retained.append(RetainedRelation(older, younger, label, kind))
            # Only *guaranteed* orderings may justify pruning other
            # relations: retained MAY edges order their endpoints only on
            # a runtime conflict, and exact-match ST->LD relations lower
            # to FORWARD edges, which deliver the store's value long
            # before its cache publish — pruning through either would let
            # chains race.  The rule lives in repro.compiler.ordering so
            # the verifier and the sync-coverage checker apply the exact
            # same one (PR 3's unsoundness came from duplicating it).
            if relation_guarantees_order(label, kind, older, younger, exact):
                reach.add_edge(older, younger)

    def by_span(pairs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
        # Short-range pairs first: retaining MUST(1,2) and MUST(2,3)
        # before examining MUST(1,3) lets transitivity prune the latter.
        return sorted(pairs, key=lambda p: (p[1] - p[0], p))

    # MUST relations are enforced prior to MAY relations (Section V-D).
    process(by_span(matrix.pairs(AliasLabel.MUST)), AliasLabel.MUST)
    process(by_span(matrix.pairs(AliasLabel.MAY)), AliasLabel.MAY)
    return plan


def retain_all(graph: DFGraph, matrix: AliasMatrix) -> EnforcementPlan:
    """The no-stage-3 fallback: enforce every MUST and MAY relation."""
    plan = EnforcementPlan()
    ops = {op.op_id: op for op in graph.memory_ops}
    for label in (AliasLabel.MUST, AliasLabel.MAY):
        for older, younger in matrix.pairs(label):
            kind = pair_kind(ops[older], ops[younger])
            assert kind is not None
            plan.retained.append(RetainedRelation(older, younger, label, kind))
    return plan
