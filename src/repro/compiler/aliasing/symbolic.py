"""Symbolic overlap reasoning shared by stages 1, 2, and 4.

Given two accesses whose *bases are known to be identical*, decide whether
their byte ranges can / must overlap.  With offsets ``oa`` and ``ob`` and
widths ``wa`` and ``wb``, the ranges ``[oa, oa+wa)`` and ``[ob, ob+wb)``
intersect exactly when ``oa < ob + wb`` and ``ob < oa + wa``, i.e.::

    -wa < oa - ob < wb

so the whole question reduces to the value set of the affine difference
``d = oa - ob`` over the iteration domain:

* ``d`` contains opaque symbols               -> MAY (runtime-only)
* value set disjoint from the overlap window  -> NO
* value set inside the window for *every*     -> MUST
  point of the domain
* otherwise                                   -> MAY

Stage 1 restricts itself to differences affine in at most one induction
variable (LLVM SCEV's comfort zone); stage 4 (polyhedral) handles the
multi-variable case with a gcd test plus bounded enumeration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.compiler.labels import AliasLabel
from repro.ir.address import AddressExpr, AffineExpr

#: Do not enumerate joint iteration domains larger than this; fall back to
#: the conservative (gcd + interval) answer instead.
DEFAULT_ENUMERATION_LIMIT = 1 << 16


@dataclass(frozen=True)
class OffsetRelation:
    """Result of an overlap query between two same-base accesses.

    ``exact`` is True only when the two accesses are provably the *same*
    address with the same width in every invocation — the precondition for
    turning a ST->LD MUST pair into a FORWARD edge rather than an ORDER
    edge (partial overlaps cannot forward).
    """

    label: AliasLabel
    exact: bool = False


def _window(wa: int, wb: int) -> Tuple[int, int]:
    """Inclusive integer window of differences that mean 'overlap'."""
    return (-wa + 1, wb - 1)


def _interval_intersects(lo: int, hi: int, wlo: int, whi: int) -> bool:
    return max(lo, wlo) <= min(hi, whi)


def _gcd_hits_window(diff: AffineExpr, wlo: int, whi: int) -> bool:
    """Can ``diff`` land in [wlo, whi] according to the gcd lattice test?

    The reachable values of ``sum(c_k * x_k) + const`` lie on the lattice
    ``const + gcd(c_k) * Z`` intersected with the interval bounds.  If the
    lattice misses the window, overlap is impossible.
    """
    lo, hi = diff.bounds()
    if not _interval_intersects(lo, hi, wlo, whi):
        return False
    coeffs = [c for _, c in diff.iv_terms]
    if not coeffs:
        return wlo <= diff.const <= whi
    g = 0
    for c in coeffs:
        g = math.gcd(g, abs(c))
    if g == 0:
        return wlo <= diff.const <= whi
    # Window clipped to the reachable interval.
    wlo = max(wlo, lo)
    whi = min(whi, hi)
    # Does any value == const (mod g) fall in [wlo, whi]?
    first = diff.const + math.ceil((wlo - diff.const) / g) * g
    return first <= whi


def _enumerate(diff: AffineExpr, wlo: int, whi: int, limit: int) -> Optional[Tuple[bool, bool]]:
    """Exact (can_overlap, always_overlaps) by sweeping the joint domain.

    Returns ``None`` when the domain is larger than *limit*.
    """
    ivars = diff.ivars
    size = 1
    for iv in ivars:
        size *= iv.trip_count
        if size > limit:
            return None
    can = False
    always = True
    values = [0] * len(ivars)

    def rec(k: int, acc: int) -> None:
        nonlocal can, always
        if k == len(ivars):
            if wlo <= acc <= whi:
                can = True
            else:
                always = False
            return
        iv, coeff = diff.iv_terms[k]
        for v in iv.domain:
            rec(k + 1, acc + coeff * v)

    rec(0, diff.const)
    return can, always


def compare_offsets(
    a: AddressExpr,
    b: AddressExpr,
    single_iv_only: bool,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> OffsetRelation:
    """Overlap relation of two accesses with provably identical bases."""
    diff = a.offset - b.offset
    if diff.has_syms:
        return OffsetRelation(AliasLabel.MAY)

    wlo, whi = _window(a.width, b.width)

    if diff.is_constant:
        if wlo <= diff.const <= whi:
            exact = diff.const == 0 and a.width == b.width
            return OffsetRelation(AliasLabel.MUST, exact=exact)
        return OffsetRelation(AliasLabel.NO)

    if single_iv_only and len(diff.iv_terms) > 1:
        return OffsetRelation(AliasLabel.MAY)

    # Cheap interval/lattice refutation first.
    if not _gcd_hits_window(diff, wlo, whi):
        return OffsetRelation(AliasLabel.NO)

    exact_result = _enumerate(diff, wlo, whi, enumeration_limit)
    if exact_result is None:
        return OffsetRelation(AliasLabel.MAY)
    can, always = exact_result
    if not can:
        return OffsetRelation(AliasLabel.NO)
    if always:
        # Overlaps at every domain point; exact only if the difference is
        # identically zero, which the constant case already handled.
        return OffsetRelation(AliasLabel.MUST, exact=False)
    return OffsetRelation(AliasLabel.MAY)
