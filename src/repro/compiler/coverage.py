"""MDE sync-coverage checking (AccelSync-flavored).

The stage-5 oracle (:mod:`repro.compiler.aliasing.stage5`) defines,
independently of the pipeline, which pairs *require* a happens-before
guarantee: every disambiguation-relevant pair the separation-logic
checker cannot prove disjoint.  This module proves that the enforcement
the compiler actually installed **covers** that required set — that
every such pair is ordered by

* guaranteed reachability over data edges + ORDER MDEs
  (:func:`repro.compiler.verify.guaranteed_reachability`, which applies
  the shared publish-semantics rule from :mod:`repro.compiler.ordering`
  — FORWARD and MAY edges never appear in transitive chains), or
* the pair's **own** MDE of any kind: an ORDER edge orders it directly,
  a FORWARD edge delivers the store's value to the load, and a MAY edge
  serializes (NACHOS-SW) or ``==?``-checks (NACHOS) the pair at runtime.

Anything left over is an *uncovered pair* — a statically detected
MDE-insertion bug — reported as a located :class:`CoverageGap` naming
both operations and their symbolic addresses.  This turns the class of
bug PR 3 found dynamically (unsound stage-3 pruning dropped a required
ordering) into one a compile-time check catches; the mutation tests in
``tests/test_coverage_checker.py`` re-introduce exactly that bug plus a
hand-dropped MDE and assert both surface here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.compiler.aliasing.stage5 import OracleVerdict, oracle_verdict
from repro.compiler.aliasing.symbolic import DEFAULT_ENUMERATION_LIMIT
from repro.compiler.labels import AliasLabel, PairKind, pair_kind
from repro.compiler.verify import guaranteed_reachability
from repro.ir.graph import DFGraph


@dataclass(frozen=True)
class CoverageGap:
    """A required happens-before pair no installed enforcement covers."""

    older: int
    younger: int
    label: AliasLabel  # the oracle's verdict, not the compiler's
    kind: PairKind
    older_desc: str
    younger_desc: str

    def __str__(self) -> str:
        return (
            f"uncovered {self.label.value.upper()} {self.kind.value} pair: "
            f"{self.older_desc} must happen before {self.younger_desc} "
            "but no data/ORDER path, FORWARD, or MAY check enforces it"
        )


@dataclass
class CoverageReport:
    """Result of one region's sync-coverage check."""

    region: str
    required: int = 0  # pairs the oracle could not prove disjoint
    covered: int = 0
    gaps: List[CoverageGap] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.gaps

    def describe(self) -> str:
        lines = [
            f"sync coverage of region '{self.region}': "
            f"{self.covered}/{self.required} required pairs covered"
        ]
        lines.extend(f"  {gap}" for gap in self.gaps)
        return "\n".join(lines)


def _op_desc(graph: DFGraph, op_id: int) -> str:
    op = graph.op(op_id)
    kind = "ld" if op.is_load else "st"
    name = op.name or f"op{op_id}"
    return f"{kind}#{op_id}({name}) {op.addr!r}"


def required_pairs(
    graph: DFGraph,
    use_tbaa: bool = True,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> List[Tuple[int, int, PairKind, OracleVerdict]]:
    """Every pair the oracle requires a happens-before guarantee for.

    Enumerated from scratch over all ST-ST / ST-LD / LD-ST pairs (LD-LD
    needs no ordering in single-threaded regions) — deliberately *not*
    from the compiler's label matrix, whose mistakes are exactly what
    the check must survive.
    """
    out: List[Tuple[int, int, PairKind, OracleVerdict]] = []
    mem = graph.memory_ops
    for i, older in enumerate(mem):
        for younger in mem[i + 1 :]:
            kind = pair_kind(older, younger)
            if kind is None:
                continue
            verdict = oracle_verdict(
                graph,
                older.op_id,
                younger.op_id,
                use_tbaa=use_tbaa,
                enumeration_limit=enumeration_limit,
            )
            if verdict.label is not AliasLabel.NO:
                out.append((older.op_id, younger.op_id, kind, verdict))
    return out


def check_sync_coverage(
    graph: DFGraph,
    use_tbaa: bool = True,
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
    dropped_mdes: Optional[Set[Tuple[int, int]]] = None,
) -> CoverageReport:
    """Prove the installed MDE set covers every oracle-required pair.

    ``dropped_mdes`` (a set of ``(src, dst)``) simulates lost edges
    without mutating the graph — the fault-injection hook the mutation
    and fuzzer tests use.
    """
    dropped = dropped_mdes or set()
    report = CoverageReport(region=graph.name)

    if dropped:
        # Rebuild reachability with the dropped edges masked out.
        masked = graph.clone(with_mdes=False)
        masked.replace_mdes(
            e for e in graph.mdes if (e.src, e.dst) not in dropped
        )
        reach = guaranteed_reachability(masked)
    else:
        reach = guaranteed_reachability(graph)

    own_edge: Set[Tuple[int, int]] = {
        (e.src, e.dst) for e in graph.mdes if (e.src, e.dst) not in dropped
    }

    for older, younger, kind, verdict in required_pairs(
        graph, use_tbaa=use_tbaa, enumeration_limit=enumeration_limit
    ):
        if younger in reach[older] or (older, younger) in own_edge:
            report.required += 1
            report.covered += 1
            continue
        report.required += 1
        report.gaps.append(
            CoverageGap(
                older=older,
                younger=younger,
                label=verdict.label,
                kind=kind,
                older_desc=_op_desc(graph, older),
                younger_desc=_op_desc(graph, younger),
            )
        )
    return report
