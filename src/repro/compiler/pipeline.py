"""The NACHOS-SW driver.

Runs stage 1 (intra-region), stage 2 (inter-procedural), stage 4
(polyhedral), and stage 5 (separation-logic) label refinement, then
stage 3 enforcement pruning, and finally lowers the retained relations
to MDEs.  Stages 2/3/4/5 can be toggled to reproduce the paper's
ablations:

* full NACHOS-SW             -> all stages (the default),
* "baseline compiler" of
  Figure 12                  -> stages 1 + 3 only,
* paper-faithful 4-stage
  pipeline                   -> ``use_stage5=False``,
* stage-wise figures 6/7/9   -> intermediate matrices exposed on the
  :class:`PipelineResult`.

Label refinement is monotone: stages 2, 4, and 5 only turn MAY into NO
or MUST, so running refinement before pruning is equivalent to the
paper's 1-2-3-4 presentation order (pruned MAYs that would refine to NO
produce no MDE either way) while keeping each stage's report
observable.  Stage 5 goes beyond the paper (ROADMAP item 4): it applies
separation-logic footprint reasoning to the symbolic MAY pairs stages
1--4 refuse, and doubles as the independent oracle the differential
fuzzer cross-checks those stages against
(:mod:`repro.compiler.aliasing.stage5`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.aliasing.stage1 import analyze_stage1
from repro.compiler.aliasing.stage2 import refine_stage2
from repro.compiler.aliasing.stage3 import EnforcementPlan, prune_stage3, retain_all
from repro.compiler.aliasing.stage4 import refine_stage4
from repro.compiler.aliasing.stage5 import Stage5Stats, refine_stage5
from repro.compiler.aliasing.symbolic import DEFAULT_ENUMERATION_LIMIT
from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.compiler.mde import insert_mdes
from repro.ir.graph import DFGraph, MDEKind, MemoryDependencyEdge


@dataclass(frozen=True)
class PipelineConfig:
    """Which stages run; mirrors the paper's ablation axes."""

    use_stage2: bool = True
    use_stage3: bool = True
    use_stage4: bool = True
    use_tbaa: bool = True
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT
    use_stage5: bool = True

    @classmethod
    def full(cls) -> "PipelineConfig":
        return cls()

    @classmethod
    def baseline_compiler(cls) -> "PipelineConfig":
        """Figure 12's baseline: stage 1 labels + stage 3 pruning only."""
        return cls(use_stage2=False, use_stage4=False, use_stage5=False)

    @classmethod
    def paper_faithful(cls) -> "PipelineConfig":
        """The paper's exact four-stage pipeline (no stage-5 oracle)."""
        return cls(use_stage5=False)

    @classmethod
    def software_only_stage1(cls) -> "PipelineConfig":
        return cls(
            use_stage2=False, use_stage3=False, use_stage4=False, use_stage5=False
        )


@dataclass
class PipelineResult:
    """Everything the experiments need about one region's compilation."""

    graph: DFGraph
    config: PipelineConfig
    stage1: AliasMatrix
    stage2: Optional[AliasMatrix]
    stage4: Optional[AliasMatrix]
    final_labels: AliasMatrix
    plan: EnforcementPlan
    mdes: List[MemoryDependencyEdge]
    exact_pairs: Set[Tuple[int, int]] = field(default_factory=set)
    stage5: Optional[AliasMatrix] = None
    stage5_stats: Optional[Stage5Stats] = None

    # ------------------------------------------------------------------
    @property
    def pre_stage5_labels(self) -> AliasMatrix:
        """The last stage-1..4 matrix — what the oracle cross-checks.

        When stage 5 ran, ``final_labels`` already contains its verdicts,
        so checking those against the oracle would be vacuous; the fuzzer
        wants the best matrix the paper-faithful stages produced.
        """
        for matrix in (self.stage4, self.stage2, self.stage1):
            if matrix is not None:
                return matrix
        raise AssertionError("stage 1 always runs")  # pragma: no cover

    # ------------------------------------------------------------------
    @property
    def total_pairs(self) -> int:
        return self.stage1.total

    def label_fractions(self, matrix: AliasMatrix) -> Dict[AliasLabel, float]:
        return {label: matrix.fraction(label) for label in AliasLabel}

    @property
    def may_mdes(self) -> List[MemoryDependencyEdge]:
        return [e for e in self.mdes if e.kind is MDEKind.MAY]

    @property
    def must_mdes(self) -> List[MemoryDependencyEdge]:
        return [e for e in self.mdes if e.kind is not MDEKind.MAY]

    def may_fan_in(self) -> Dict[int, int]:
        """op_id -> number of older MAY-alias parents (Figure 14 input)."""
        fan: Dict[int, int] = {op.op_id: 0 for op in self.graph.memory_ops}
        for edge in self.may_mdes:
            fan[edge.dst] += 1
        return fan

    @property
    def needs_no_disambiguation(self) -> bool:
        """True when the compiler proved every pair (no MAY MDEs left)."""
        return not self.may_mdes


class AliasPipeline:
    """Run NACHOS-SW's analyses over one region graph."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig.full()

    def run(self, graph: DFGraph, apply_mdes: bool = True) -> PipelineResult:
        cfg = self.config
        exact: Set[Tuple[int, int]] = set()

        stage1 = analyze_stage1(
            graph,
            use_tbaa=cfg.use_tbaa,
            enumeration_limit=cfg.enumeration_limit,
            exact_pairs=exact,
        )
        current = stage1

        stage2 = None
        if cfg.use_stage2:
            stage2 = refine_stage2(
                graph, current, enumeration_limit=cfg.enumeration_limit, exact_pairs=exact
            )
            current = stage2

        stage4 = None
        if cfg.use_stage4:
            stage4 = refine_stage4(
                graph, current, enumeration_limit=cfg.enumeration_limit, exact_pairs=exact
            )
            current = stage4

        stage5 = None
        stage5_stats = None
        if cfg.use_stage5:
            stage5_stats = Stage5Stats()
            stage5 = refine_stage5(
                graph,
                current,
                enumeration_limit=cfg.enumeration_limit,
                exact_pairs=exact,
                use_tbaa=cfg.use_tbaa,
                stats=stage5_stats,
            )
            current = stage5

        if cfg.use_stage3:
            plan = prune_stage3(graph, current, exact_pairs=exact)
        else:
            plan = retain_all(graph, current)

        mdes = insert_mdes(graph, plan, exact, current, apply=apply_mdes)
        return PipelineResult(
            graph=graph,
            config=cfg,
            stage1=stage1,
            stage2=stage2,
            stage4=stage4,
            final_labels=current,
            plan=plan,
            mdes=mdes,
            exact_pairs=exact,
            stage5=stage5,
            stage5_stats=stage5_stats,
        )


def compile_region(
    graph: DFGraph, config: Optional[PipelineConfig] = None
) -> PipelineResult:
    """Convenience wrapper: run the full pipeline and install the MDEs."""
    return AliasPipeline(config).run(graph)
