"""The publish-semantics ordering rule, stated once.

Three consumers need to agree on exactly which enforced relations
*guarantee* an ordering of the older op's cache publish before the
younger op:

* stage 3 (:func:`repro.compiler.aliasing.stage3.prune_stage3`) may only
  prune a relation through edges that guarantee ordering,
* the static verifier (:func:`repro.compiler.verify.verify_enforcement`)
  re-derives the guaranteed-ordering relation to audit a plan, and
* the sync-coverage checker (:mod:`repro.compiler.coverage`) proves the
  oracle's required happens-before pairs are covered by it.

PR 3 fixed an unsoundness that existed precisely because this rule was
duplicated: pruning treated exact ST->LD MUST relations as ordering
while enforcement lowered them to FORWARD edges, which deliver the
store's *value* long before its *publish* completes in the cache.  The
predicates below are the single source of truth; the three consumers
import them, and ``tests/test_coverage_checker.py`` pins that they agree
on every compiled region.

The rule itself:

* A retained **MUST** relation guarantees ordering **unless** it is a
  forwarding candidate (exact-match ST->LD), because forwarding
  candidates lower to FORWARD edges.
* A retained **MAY** relation never guarantees ordering: it orders its
  endpoints only when the runtime addresses actually conflict (NACHOS
  lets non-conflicting pairs race).
* Of the installed MDE kinds, only **ORDER** edges guarantee ordering;
  FORWARD and MAY edges satisfy *their own* pair but must not appear in
  transitive ordering chains.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.compiler.labels import AliasLabel, PairKind
from repro.ir.graph import MDEKind


def is_forward_candidate(
    kind: PairKind, older: int, younger: int, exact_pairs: Set[Tuple[int, int]]
) -> bool:
    """Would this relation lower to a FORWARD edge rather than ORDER?

    Exact-match ST->LD pairs (same address, same width, every invocation)
    are the forwarding candidates: the load can consume the store's value
    directly instead of waiting for the cache publish.
    """
    return kind is PairKind.ST_LD and (older, younger) in exact_pairs


def relation_guarantees_order(
    label: AliasLabel,
    kind: PairKind,
    older: int,
    younger: int,
    exact_pairs: Set[Tuple[int, int]],
) -> bool:
    """Does *enforcing* this retained relation order publish-before-access?

    Only such relations may justify transitively pruning other relations
    (stage 3) or count toward guaranteed reachability (verifier,
    coverage checker).
    """
    return label is AliasLabel.MUST and not is_forward_candidate(
        kind, older, younger, exact_pairs
    )


def edge_guarantees_order(kind: MDEKind) -> bool:
    """Does an installed MDE of this kind guarantee ordering?

    The installed-edge view of :func:`relation_guarantees_order`:
    non-forwarding MUST relations lower to ORDER edges and nothing else
    does, so the two predicates describe the same set of orderings.
    """
    return kind is MDEKind.ORDER
