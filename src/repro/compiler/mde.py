"""Turn retained alias relations into memory dependency edges (MDEs).

Edge selection follows Section V of the paper:

* MUST ST->LD with a provably identical address and width  -> ``FORWARD``
  (the memory dependency becomes a data dependency).  Each load accepts a
  forward from at most one store; we pick the *youngest* exactly-matching
  older store, and only when every store between it and the load is
  provably NO-alias with the load — otherwise an intervening store could
  overwrite the forwarded location at runtime and the forward would be
  stale.  Partial overlaps and demoted candidates become ``ORDER``.
* MUST LD->ST and ST->ST                                   -> ``ORDER``
  (a 1-bit ready signal).
* MAY (any kind)                                           -> ``MAY``
  (serialized by NACHOS-SW, runtime-checked by NACHOS).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.compiler.aliasing.stage3 import EnforcementPlan
from repro.compiler.labels import AliasLabel, AliasMatrix, PairKind
from repro.ir.graph import DFGraph, MDEKind, MemoryDependencyEdge


def _forward_is_safe(
    graph: DFGraph, labels: AliasMatrix, store_id: int, load_id: int
) -> bool:
    """No store strictly between *store_id* and *load_id* may alias the load."""
    for op in graph.stores:
        if store_id < op.op_id < load_id:
            if labels.get(op.op_id, load_id) is not AliasLabel.NO:
                return False
    return True


def insert_mdes(
    graph: DFGraph,
    plan: EnforcementPlan,
    exact_pairs: Set[Tuple[int, int]],
    labels: AliasMatrix,
    apply: bool = True,
) -> List[MemoryDependencyEdge]:
    """Build the MDE list for *plan* and (optionally) install it on *graph*."""
    edges: List[MemoryDependencyEdge] = []

    # Pick the forwarding store for each load: the youngest exact-match
    # older store among retained MUST ST->LD relations that is safe to
    # forward across.
    forwarder: Dict[int, int] = {}
    for rel in plan.retained:
        if (
            rel.label is AliasLabel.MUST
            and rel.kind is PairKind.ST_LD
            and (rel.older, rel.younger) in exact_pairs
        ):
            current = forwarder.get(rel.younger)
            if current is not None and rel.older <= current:
                continue
            if _forward_is_safe(graph, labels, rel.older, rel.younger):
                forwarder[rel.younger] = rel.older

    for rel in plan.retained:
        if rel.label is AliasLabel.MAY:
            kind = MDEKind.MAY
        elif rel.kind is PairKind.ST_LD and forwarder.get(rel.younger) == rel.older:
            kind = MDEKind.FORWARD
        else:
            kind = MDEKind.ORDER
        edges.append(MemoryDependencyEdge(rel.older, rel.younger, kind))

    if apply:
        graph.replace_mdes(edges)
    return edges


def count_by_kind(edges: Iterable[MemoryDependencyEdge]) -> Dict[MDEKind, int]:
    out = {kind: 0 for kind in MDEKind}
    for edge in edges:
        out[edge.kind] += 1
    return out
