"""Alias labels and the pairwise alias matrix.

The compiler classifies every ordered pair of memory operations (older,
younger) as:

* ``NO``   — provably disjoint; the pair may execute in parallel,
* ``MUST`` — provably overlapping; program order must be enforced,
* ``MAY``  — the analysis cannot decide.

Load-load pairs are excluded: LD-LD ordering is only needed for racy
parallel programs (Section II-A), and the regions here are single threads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.graph import DFGraph
from repro.ir.ops import Operation


class AliasLabel(enum.Enum):
    NO = "no"
    MAY = "may"
    MUST = "must"


class PairKind(enum.Enum):
    """Which ordering family a pair belongs to (Figure 2)."""

    ST_ST = "st-st"
    ST_LD = "st-ld"  # older store, younger load (forwarding candidate)
    LD_ST = "ld-st"  # older load, younger store (anti dependence)


def pair_kind(older: Operation, younger: Operation) -> Optional[PairKind]:
    """Classify an (older, younger) memory-op pair; ``None`` for LD-LD."""
    if older.is_store and younger.is_store:
        return PairKind.ST_ST
    if older.is_store and younger.is_load:
        return PairKind.ST_LD
    if older.is_load and younger.is_store:
        return PairKind.LD_ST
    return None


Pair = Tuple[int, int]


@dataclass
class AliasMatrix:
    """Labels for every disambiguation-relevant pair of a region.

    Pairs are keyed ``(older_id, younger_id)`` with ``older_id <
    younger_id`` (op ids are program order).
    """

    labels: Dict[Pair, AliasLabel] = field(default_factory=dict)

    @classmethod
    def universe(cls, graph: DFGraph, default: AliasLabel = AliasLabel.MAY) -> "AliasMatrix":
        """All ST-ST / ST-LD / LD-ST pairs of *graph*, labeled *default*."""
        matrix = cls()
        mem = graph.memory_ops
        for i, older in enumerate(mem):
            for younger in mem[i + 1 :]:
                if pair_kind(older, younger) is not None:
                    matrix.labels[(older.op_id, younger.op_id)] = default
        return matrix

    # ------------------------------------------------------------------
    def get(self, older: int, younger: int) -> AliasLabel:
        return self.labels[(older, younger)]

    def set(self, older: int, younger: int, label: AliasLabel) -> None:
        if (older, younger) not in self.labels:
            raise KeyError(f"pair ({older}, {younger}) not in the alias universe")
        self.labels[(older, younger)] = label

    def pairs(self, label: Optional[AliasLabel] = None) -> List[Pair]:
        if label is None:
            return sorted(self.labels)
        return sorted(p for p, l in self.labels.items() if l is label)

    def count(self, label: AliasLabel) -> int:
        return sum(1 for l in self.labels.values() if l is label)

    @property
    def total(self) -> int:
        return len(self.labels)

    def fraction(self, label: AliasLabel) -> float:
        return self.count(label) / self.total if self.total else 0.0

    def copy(self) -> "AliasMatrix":
        return AliasMatrix(labels=dict(self.labels))

    def counts(self) -> Dict[AliasLabel, int]:
        out = {label: 0 for label in AliasLabel}
        for l in self.labels.values():
            out[l] += 1
        return out

    def __iter__(self) -> Iterator[Tuple[Pair, AliasLabel]]:
        return iter(sorted(self.labels.items()))

    def __len__(self) -> int:
        return len(self.labels)
