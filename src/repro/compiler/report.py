"""Human-readable per-region compilation reports.

``explain(result)`` narrates what the pipeline did to one region: the
label census after each stage, what each stage changed, the retained
MDEs with the reason each exists, and the per-load forwarding decisions.
Useful when tuning a workload spec or debugging an unexpected label.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import ascii_table
from repro.compiler.labels import AliasLabel, AliasMatrix
from repro.compiler.pipeline import PipelineResult
from repro.ir.graph import MDEKind


def _census(matrix: AliasMatrix) -> Dict[str, int]:
    counts = matrix.counts()
    return {label.value.upper(): counts[label] for label in AliasLabel}


def stage_census(result: PipelineResult) -> List[List]:
    """One row per stage: the NO/MAY/MUST census after it ran."""
    rows: List[List] = []
    rows.append(["stage 1 (intra-region)"] + list(_census(result.stage1).values()))
    if result.stage2 is not None:
        rows.append(
            ["stage 2 (inter-procedural)"] + list(_census(result.stage2).values())
        )
    if result.stage4 is not None:
        rows.append(
            ["stage 4 (polyhedral)"] + list(_census(result.stage4).values())
        )
    if result.stage5 is not None:
        rows.append(
            ["stage 5 (separation logic)"] + list(_census(result.stage5).values())
        )
    return rows


def _op_label(result: PipelineResult, op_id: int) -> str:
    op = result.graph.op(op_id)
    kind = "ld" if op.is_load else "st"
    name = op.name or f"op{op_id}"
    return f"{kind}#{op_id}({name})"


def explain(result: PipelineResult) -> str:
    """Render the full compilation story of one region."""
    graph = result.graph
    lines: List[str] = [
        f"Region '{graph.name}': {len(graph)} ops, "
        f"{len(graph.memory_ops)} memory ops, "
        f"{result.total_pairs} disambiguation-relevant pairs",
        "",
        "Label census by stage (NO / MAY / MUST):",
    ]
    headers = ["stage", "NO", "MAY", "MUST"]
    lines.append(ascii_table(headers, stage_census(result)))

    plan = result.plan
    lines.append("")
    lines.append(
        f"Stage 3 pruning: {plan.removed_must} MUST and {plan.removed_may} MAY "
        f"relations subsumed by existing orderings; {len(plan.retained)} retained."
    )

    if result.mdes:
        lines.append("")
        lines.append("Memory dependency edges:")
        reasons = {
            MDEKind.ORDER: "MUST alias: 1-bit ready signal",
            MDEKind.FORWARD: "exact ST->LD: value forwarded, no cache read",
            MDEKind.MAY: "compiler uncertain: serialized (SW) / ==? checked (HW)",
        }
        for edge in result.mdes:
            lines.append(
                f"  {_op_label(result, edge.src)} --{edge.kind.value.upper()}--> "
                f"{_op_label(result, edge.dst)}   [{reasons[edge.kind]}]"
            )
    else:
        lines.append("")
        lines.append(
            "No MDEs required: the compiler proved every pair (or orderings "
            "are implied by data dependencies)."
        )

    fan = result.may_fan_in()
    heavy = {k: v for k, v in fan.items() if v > 1}
    if heavy:
        lines.append("")
        lines.append("MAY fan-in hotspots (comparator arbitration):")
        for op_id, n in sorted(heavy.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {_op_label(result, op_id)}: {n} older MAY parents")
    return "\n".join(lines)
